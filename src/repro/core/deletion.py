"""Algorithm 3: minimum-cost subtree deletion (Section V-B).

For every node ``v`` of an annotated run tree the tables computed here give

* ``X_T(v)`` — the minimum cost of deleting ``T[v]`` entirely, and
* ``Y_T(v)[l]`` — the minimum cost of a sequence of elementary subtree
  deletions reducing ``T[v]`` to a *branch-free* subtree with exactly
  ``l`` leaves.

The recurrences follow the paper exactly:

* ``Q``: one leaf, zero reduction cost; deleting costs ``γ(1, s, t)``.
* ``P`` / ``F`` / ``L``: keep one child (reduced to ``l`` leaves), delete
  the others — true loops are treated like true forks per Section VI.
* ``S``: a knapsack-style convolution ``Z`` distributing ``l`` leaves over
  the ordered children (this is the O(|E|³) bottleneck the paper measures
  in Fig. 12).
* Finally ``X_T(v) = min_l Y_T(v)[l] + γ(l, s(v), t(v))`` — by the
  quadrangle inequality an optimal deletion never inserts (Lemma 5.7).

Besides the costs, :class:`DeletionTables` exposes *backtraces*:
:meth:`reduction_plan` reconstructs the concrete sequence of elementary
deletions (deepest-first, Lemma 5.5), which the edit-script generator
lowers to path operations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.kernel import resolve_kernel, series_convolve
from repro.costs.base import CostModel
from repro.errors import EditScriptError
from repro.sptree.nodes import NodeType, SPTree

INF = math.inf


@dataclass(frozen=True)
class SpineNode:
    """A node of a reduced (branch-free) subtree form.

    ``node`` is the original tree node; ``children`` the kept children's
    spines (one child for P/F/L nodes, all children for S nodes).
    """

    node: SPTree
    children: Tuple["SpineNode", ...]


@dataclass
class ReductionStep:
    """One elementary deletion emitted by a reduction plan.

    ``victim`` is the original tree node whose (already reduced, hence
    branch-free) subtree is deleted; ``leaves`` is the number of leaves it
    has at deletion time, and ``cost`` the operation's price.
    """

    victim: SPTree
    leaves: int
    cost: float


class DeletionTables:
    """X/Y tables for one annotated run tree under a cost model.

    ``kernel`` selects the S-node convolution implementation (see
    :mod:`repro.core.kernel`); the default pure-Python loops are the
    bit-identical oracle.  Tables are immutable once built, so one
    instance is safely shared across every DP pairing ``tree`` within
    a batch (:class:`~repro.core.memo.SharedTables`).
    """

    def __init__(
        self, tree: SPTree, cost: CostModel, kernel: str = "python"
    ):
        self.tree = tree
        self.cost = cost
        self.kernel = resolve_kernel(kernel)
        # Dense Y arrays indexed by leaf count (index 0 unused -> INF).
        self._y: Dict[int, List[float]] = {}
        self._x: Dict[int, float] = {}
        self._max_leaves: Dict[int, int] = {}
        self._compute()

    # ------------------------------------------------------------------
    # Table access
    # ------------------------------------------------------------------
    def x(self, node: SPTree) -> float:
        """``X_T(v)``: minimum cost of deleting ``T[v]``."""
        return self._x[id(node)]

    def y(self, node: SPTree, leaves: int) -> float:
        """``Y_T(v)[l]`` (``inf`` when no branch-free form with l leaves)."""
        array = self._y[id(node)]
        if leaves < 1 or leaves >= len(array):
            return INF
        return array[leaves]

    def max_leaves(self, node: SPTree) -> int:
        """``l(v)``: maximum achievable branch-free leaf count."""
        return self._max_leaves[id(node)]

    # ------------------------------------------------------------------
    # Computation
    # ------------------------------------------------------------------
    def _compute(self) -> None:
        for node in self.tree.iter_nodes("post"):
            if node.kind is NodeType.Q:
                self._compute_q(node)
            elif node.kind in (NodeType.P, NodeType.F, NodeType.L):
                self._compute_branching(node)
            else:
                self._compute_series(node)

    def _finalise_x(self, node: SPTree, y_array: List[float]) -> None:
        best = INF
        for leaves in range(1, len(y_array)):
            if math.isinf(y_array[leaves]):
                continue
            candidate = y_array[leaves] + self.cost.path_cost(
                leaves, node.source_label, node.sink_label
            )
            if candidate < best:
                best = candidate
        self._x[id(node)] = best

    def _compute_q(self, node: SPTree) -> None:
        self._max_leaves[id(node)] = 1
        y_array = [INF, 0.0]
        self._y[id(node)] = y_array
        self._finalise_x(node, y_array)

    def _compute_branching(self, node: SPTree) -> None:
        children = node.children
        sum_x = sum(self._x[id(child)] for child in children)
        limit = max(self._max_leaves[id(child)] for child in children)
        y_array = [INF] * (limit + 1)
        for child in children:
            child_y = self._y[id(child)]
            rest = sum_x - self._x[id(child)]
            for leaves in range(1, len(child_y)):
                if math.isinf(child_y[leaves]):
                    continue
                candidate = child_y[leaves] + rest
                if candidate < y_array[leaves]:
                    y_array[leaves] = candidate
        self._max_leaves[id(node)] = limit
        self._y[id(node)] = y_array
        self._finalise_x(node, y_array)

    def _compute_series(self, node: SPTree) -> None:
        prefix = [0.0]  # Z for zero children: exactly zero leaves, cost 0.
        for child in node.children:
            # The O(|E|³) knapsack convolution (the paper's Fig. 12
            # bottleneck) runs on the selected kernel; both kernels
            # evaluate the identical candidate set with identical
            # float64 adds, so the tables are bit-identical.
            prefix = series_convolve(
                prefix, self._y[id(child)], self.kernel
            )
        self._max_leaves[id(node)] = len(prefix) - 1
        self._y[id(node)] = prefix
        self._finalise_x(node, prefix)

    # ------------------------------------------------------------------
    # Backtraces
    # ------------------------------------------------------------------
    def best_leaf_count(self, node: SPTree) -> int:
        """The ``l`` minimising ``Y[l] + γ(l, s, t)`` (deletion target)."""
        y_array = self._y[id(node)]
        best_l = -1
        best = INF
        for leaves in range(1, len(y_array)):
            if math.isinf(y_array[leaves]):
                continue
            candidate = y_array[leaves] + self.cost.path_cost(
                leaves, node.source_label, node.sink_label
            )
            if candidate < best:
                best = candidate
                best_l = leaves
        if best_l < 0:
            raise EditScriptError("subtree has no achievable branch-free form")
        return best_l

    def deletion_plan(self, node: SPTree) -> List[ReductionStep]:
        """Elementary deletions realising ``X_T(v)`` (reduce, then delete).

        The final step deletes ``node`` itself, branch-free at that point.
        """
        target = self.best_leaf_count(node)
        steps = self.reduction_plan(node, target)
        steps.append(
            ReductionStep(
                victim=node,
                leaves=target,
                cost=self.cost.path_cost(
                    target, node.source_label, node.sink_label
                ),
            )
        )
        return steps

    def reduction_plan(self, node: SPTree, leaves: int) -> List[ReductionStep]:
        """Elementary deletions reducing ``T[v]`` to ``l`` leaves (``Y``)."""
        steps: List[ReductionStep] = []
        self._emit_reduction(node, leaves, steps)
        return steps

    def _emit_reduction(
        self, node: SPTree, leaves: int, steps: List[ReductionStep]
    ) -> None:
        if node.kind is NodeType.Q:
            if leaves != 1:
                raise EditScriptError("Q node can only reduce to one leaf")
            return
        y_value = self.y(node, leaves)
        if math.isinf(y_value):
            raise EditScriptError(
                f"no branch-free reduction of a {node.kind} node to "
                f"{leaves} leaves"
            )
        if node.kind in (NodeType.P, NodeType.F, NodeType.L):
            sum_x = sum(self._x[id(child)] for child in node.children)
            keeper = None
            for child in node.children:
                rest = sum_x - self._x[id(child)]
                if (
                    not math.isinf(self.y(child, leaves))
                    and abs(self.y(child, leaves) + rest - y_value) <= 1e-9
                ):
                    keeper = child
                    break
            if keeper is None:
                raise EditScriptError("inconsistent branching backtrace")
            for child in node.children:
                if child is keeper:
                    continue
                # Delete the sibling entirely: reduce it, then remove it.
                target = self.best_leaf_count(child)
                self._emit_reduction(child, target, steps)
                steps.append(
                    ReductionStep(
                        victim=child,
                        leaves=target,
                        cost=self.cost.path_cost(
                            target, child.source_label, child.sink_label
                        ),
                    )
                )
            self._emit_reduction(keeper, leaves, steps)
            return

        # S node: redo the convolution with per-child allocations.
        allocations = self._series_allocation(node, leaves)
        for child, child_leaves in zip(node.children, allocations):
            self._emit_reduction(child, child_leaves, steps)

    def reduced_spine(self, node: SPTree, leaves: int) -> "SpineNode":
        """The branch-free form of ``T[v]`` with ``leaves`` leaves.

        Returns a :class:`SpineNode` tree mirroring the kept structure: the
        keeper chain through P/F/L nodes and the full (reduced) child list
        of S nodes.  Used by the script generator to materialise insertion
        states (insertion is the reverse of deletion).
        """
        if node.kind is NodeType.Q:
            if leaves != 1:
                raise EditScriptError("Q node can only reduce to one leaf")
            return SpineNode(node, ())
        if math.isinf(self.y(node, leaves)):
            raise EditScriptError(
                f"no branch-free reduction of a {node.kind} node to "
                f"{leaves} leaves"
            )
        if node.kind in (NodeType.P, NodeType.F, NodeType.L):
            sum_x = sum(self._x[id(child)] for child in node.children)
            for child in node.children:
                rest = sum_x - self._x[id(child)]
                if (
                    not math.isinf(self.y(child, leaves))
                    and abs(self.y(child, leaves) + rest - self.y(node, leaves))
                    <= 1e-9
                ):
                    return SpineNode(node, (self.reduced_spine(child, leaves),))
            raise EditScriptError("inconsistent branching backtrace")
        allocations = self._series_allocation(node, leaves)
        children = tuple(
            self.reduced_spine(child, child_leaves)
            for child, child_leaves in zip(node.children, allocations)
        )
        return SpineNode(node, children)

    def _series_allocation(self, node: SPTree, leaves: int) -> List[int]:
        children = node.children
        # Forward tables Z_i as in the computation, then backtrack.
        tables: List[List[float]] = [[0.0]]
        for child in children:
            child_y = self._y[id(child)]
            prev = tables[-1]
            new_size = len(prev) - 1 + self._max_leaves[id(child)] + 1
            merged = [INF] * new_size
            for base in range(len(prev)):
                if math.isinf(prev[base]):
                    continue
                for count in range(1, len(child_y)):
                    if math.isinf(child_y[count]):
                        continue
                    total = prev[base] + child_y[count]
                    if total < merged[base + count]:
                        merged[base + count] = total
            tables.append(merged)

        allocations = [0] * len(children)
        remaining = leaves
        for index in range(len(children) - 1, -1, -1):
            child_y = self._y[id(children[index])]
            prev = tables[index]
            found = False
            for count in range(1, len(child_y)):
                base = remaining - count
                if base < 0 or base >= len(prev):
                    continue
                if math.isinf(child_y[count]) or math.isinf(prev[base]):
                    continue
                if (
                    abs(prev[base] + child_y[count] - tables[index + 1][remaining])
                    <= 1e-9
                ):
                    allocations[index] = count
                    remaining = base
                    found = True
                    break
            if not found:
                raise EditScriptError("inconsistent series backtrace")
        return allocations
