"""Per-batch sharing of DP support tables across pair computations.

A cold ``distance_matrix`` over ``N`` runs performs ``N·(N−1)/2`` DPs,
and each historically rebuilt its two :class:`DeletionTables` (one per
run) and the per-spec :class:`SpecCostTables` from scratch — ``N−1``
redundant table builds per run, and the S-node convolution inside the
tables is the DP's stated O(|E|³) bottleneck.  A :class:`SharedTables`
instance memoises those tables for the lifetime of one batch: the
corpus service constructs one per cold dispatch and threads it through
the in-process backends (serial/thread), so every run's tables are
built exactly once per batch.

Sharing is sound because the tables are pure functions of
``(tree, cost)`` (respectively ``(spec, cost)``) and immutable once
built — results are bit-identical to per-pair construction, the same
objects merely get reused.  Cross-pair *DP cell* sharing is
deliberately absent: P-node accumulation order follows each pair's
child order, so cells keyed by anything weaker than object identity
would not be bit-stable.

The memo keys by ``id()`` and keeps strong references to the keyed
objects, which makes id reuse impossible while an entry lives — the
lookup verifies identity anyway, out of caution.  A lock serialises
construction (thread backends race to build the same run's tables);
table building is O(runs), negligible against the O(pairs) DP work it
amortises.

The process backend cannot share memory; its workers keep an analogous
per-worker memo (:mod:`repro.backends.work`), fresh per pool.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from repro.core.deletion import DeletionTables
from repro.core.kernel import resolve_kernel
from repro.core.spec_costs import SpecCostTables
from repro.costs.base import CostModel
from repro.errors import EditScriptError
from repro.sptree.nodes import NodeType, SPTree


class SharedTables:
    """One batch's memo of :class:`DeletionTables`/:class:`SpecCostTables`.

    Bound to a single cost model and kernel; the edit-distance DP
    refuses a mismatched cost at construction time rather than serving
    tables priced under a different ``γ``.
    """

    def __init__(self, cost: CostModel, kernel: str = "python"):
        self.cost = cost
        self.kernel = resolve_kernel(kernel)
        self._lock = threading.Lock()
        self._deletions: Dict[int, Tuple[SPTree, DeletionTables]] = {}
        self._spec_tables: Dict[int, Tuple[object, SpecCostTables]] = {}
        self._origin_ids: Dict[int, Tuple[SPTree, Dict[int, int]]] = {}
        self._origin_intern: Dict[tuple, int] = {}

    def deletions(self, tree: SPTree) -> DeletionTables:
        """The (memoised) deletion tables for one run tree."""
        key = id(tree)
        with self._lock:
            entry = self._deletions.get(key)
            if entry is not None and entry[0] is tree:
                return entry[1]
            tables = DeletionTables(tree, self.cost, kernel=self.kernel)
            self._deletions[key] = (tree, tables)
            return tables

    def spec_tables(self, spec) -> SpecCostTables:
        """The (memoised) insertion-cost tables for one specification."""
        key = id(spec)
        with self._lock:
            entry = self._spec_tables.get(key)
            if entry is not None and entry[0] is spec:
                return entry[1]
            tables = SpecCostTables(spec, self.cost)
            self._spec_tables[key] = (spec, tables)
            return tables

    def origin_ids(self, tree: SPTree) -> Dict[int, int]:
        """Per-node interned origin-structure keys for one run tree.

        The intern table is batch-wide, so equal ids certify ``≡``
        across *any* two trees served by this instance — exactly the
        property the DP's ``≡``-shortcut compares.  Each tree's keys
        are built once per batch instead of once per pair, which is
        where the per-pair DP spent a quarter of its time.  The walk
        doubles as origin validation, letting callers skip a separate
        pre-order pass.
        """
        key = id(tree)
        with self._lock:
            entry = self._origin_ids.get(key)
            if entry is not None and entry[0] is tree:
                return entry[1]
            intern = self._origin_intern
            ids: Dict[int, int] = {}
            for node in tree.iter_nodes("post"):
                if node.origin is None:
                    raise EditScriptError(
                        "run tree node lacks an origin; build trees via "
                        "annotate_run_tree or the executor"
                    )
                if node.kind is NodeType.Q:
                    node_key: tuple = ("Q", id(node.origin))
                else:
                    child_ids = [ids[id(c)] for c in node.children]
                    if node.kind in (NodeType.P, NodeType.F):
                        child_ids.sort()
                    node_key = (
                        node.kind.value,
                        id(node.origin),
                        tuple(child_ids),
                    )
                ids[id(node)] = intern.setdefault(node_key, len(intern))
            self._origin_ids[key] = (tree, ids)
            return ids

    def __len__(self) -> int:
        with self._lock:
            return len(self._deletions)
