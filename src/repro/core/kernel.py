"""DP kernel selection: the pure-Python oracle and the numpy fast path.

The O(|E|³) bottleneck of the edit-distance pipeline is the S-node
min-plus convolution inside :class:`~repro.core.deletion.DeletionTables`
(Algorithm 3, measured in the paper's Fig. 12).  This module provides
two interchangeable implementations of that inner sweep:

* ``"python"`` — the reference loops, the **bit-identical oracle**
  every other configuration is checked against;
* ``"numpy"`` — the same candidate set evaluated with vectorised
  float64 adds and element-wise minima.

Bit-identity is by construction, not by tolerance: every candidate is
one IEEE-754 addition of the same two ``float64`` operands in the same
operand order, and the minimum over an identical candidate set of
non-negative values (no NaNs, no ``-0.0``) is bitwise stable regardless
of evaluation order.  A Hypothesis property
(``tests/property/test_kernel_equivalence.py``) enforces the equality
end to end.

Selection goes through :func:`resolve_kernel`: ``"auto"`` (the config
default) picks numpy when it is importable and silently falls back to
the pure-Python loops when it is not — the library never *requires*
numpy.  Asking for ``"numpy"`` explicitly on a machine without it is an
error, not a silent downgrade.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.errors import ReproError

INF = math.inf

#: The names :func:`resolve_kernel` (and ``REPRO_KERNEL``) accept.
KERNEL_NAMES = ("auto", "python", "numpy")

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None


def numpy_available() -> bool:
    """Whether the numpy kernel can run in this interpreter."""
    return _np is not None


def resolve_kernel(name: Optional[str]) -> str:
    """Resolve a kernel spec to a concrete kernel name.

    ``None`` and ``"auto"`` pick ``"numpy"`` when numpy is importable
    and ``"python"`` otherwise.  An explicit ``"numpy"`` request on an
    interpreter without numpy raises :class:`~repro.errors.ReproError`
    — a deployment that pinned the fast kernel must fail loudly, not
    quietly compute on the slow one.
    """
    word = "auto" if name is None else str(name).strip().lower()
    if word not in KERNEL_NAMES:
        raise ReproError(
            f"unknown kernel {name!r} "
            f"(expected one of {', '.join(KERNEL_NAMES)})"
        )
    if word == "auto":
        return "numpy" if numpy_available() else "python"
    if word == "numpy" and not numpy_available():
        raise ReproError(
            "kernel 'numpy' requested but numpy is not importable; "
            "install numpy or use kernel='python'"
        )
    return word


def series_convolve_python(
    prefix: List[float], child_y: List[float]
) -> List[float]:
    """One S-node convolution step: ``Z' = Z ⊕ Y(child)`` (min-plus).

    ``prefix[b]`` is the cost of distributing ``b`` leaves over the
    children consumed so far; ``child_y[l]`` the child's reduction cost
    to ``l`` leaves (index 0 unused, ``INF``).  Returns the merged
    table of size ``len(prefix) + len(child_y) - 2``.
    """
    new_size = len(prefix) - 1 + len(child_y) - 1 + 1
    merged = [INF] * new_size
    for base in range(len(prefix)):
        if math.isinf(prefix[base]):
            continue
        base_cost = prefix[base]
        for leaves in range(1, len(child_y)):
            if math.isinf(child_y[leaves]):
                continue
            total = base_cost + child_y[leaves]
            if total < merged[base + leaves]:
                merged[base + leaves] = total
    return merged


def series_convolve_numpy(
    prefix: List[float], child_y: List[float]
) -> List[float]:
    """The numpy sweep over the same candidate set as the python loops.

    ``merged[b + l] = min(prefix[b] + child_y[l])`` — each candidate is
    one float64 add of the same operands in the same order
    (``prefix[b] + child_y[l]``), so the result is bit-identical to
    :func:`series_convolve_python`.
    """
    prefix_arr = _np.asarray(prefix, dtype=_np.float64)
    new_size = len(prefix) - 1 + len(child_y) - 1 + 1
    merged = _np.full(new_size, INF, dtype=_np.float64)
    for leaves in range(1, len(child_y)):
        value = child_y[leaves]
        if math.isinf(value):
            continue
        window = merged[leaves:leaves + len(prefix)]
        _np.minimum(window, prefix_arr + value, out=window)
    return merged.tolist()


def series_convolve(
    prefix: List[float], child_y: List[float], kernel: str
) -> List[float]:
    """Dispatch one convolution step to the named (resolved) kernel."""
    if kernel == "numpy":
        return series_convolve_numpy(prefix, child_y)
    return series_convolve_python(prefix, child_y)
