"""Edit-script post-processing: detecting composite operations (§III-C.1).

The paper keeps the edit operations atomic ("More complex operations can
be decomposed to a sequence of elementary path edit operations.  For
example, one could define a *path replacement* operation … or a *subgraph
insertion* operation … Such operations may be detected by post-processing
the output of our algorithm.").  This module implements that
post-processing:

* **path replacements** — a deletion and an insertion between the same
  terminal labels pair up into one `replace` presented to the user;
* **subgraph insertions / deletions** — maximal runs of insertions (or
  deletions) sharing the same terminal labels collapse into one grouped
  operation (the incremental construction of a whole SP subgraph between
  two nodes);
* **loop rebalancing** — an expansion and a contraction on the same loop
  pair up (an iteration was *replaced*).

The result is a compact, human-oriented digest; the underlying elementary
script remains the ground truth for costs and validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.edit_script import (
    PATH_CONTRACTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_INSERTION,
    PathOperation,
)

REPLACE_PATH = "replace-path"
REPLACE_ITERATION = "replace-iteration"
GROW_SUBGRAPH = "grow-subgraph"
SHRINK_SUBGRAPH = "shrink-subgraph"


@dataclass
class CompositeOperation:
    """A user-facing composite built from elementary operations."""

    kind: str
    operations: List[PathOperation]
    source_label: str
    sink_label: str

    @property
    def cost(self) -> float:
        return sum(op.cost for op in self.operations)

    @property
    def size(self) -> int:
        return len(self.operations)

    def describe(self) -> str:
        terminals = f"{self.source_label} .. {self.sink_label}"
        if self.kind == REPLACE_PATH:
            deleted = next(
                op for op in self.operations if op.kind == PATH_DELETION
            )
            inserted = next(
                op for op in self.operations if op.kind == PATH_INSERTION
            )
            return (
                f"replace path [{' -> '.join(deleted.path_labels)}] with "
                f"[{' -> '.join(inserted.path_labels)}]"
            )
        if self.kind == REPLACE_ITERATION:
            return f"replace one loop iteration between {terminals}"
        if self.kind == GROW_SUBGRAPH:
            return (
                f"insert a {self.size}-path subgraph between {terminals}"
            )
        if self.kind == SHRINK_SUBGRAPH:
            return (
                f"delete a {self.size}-path subgraph between {terminals}"
            )
        return f"{self.kind} between {terminals}"  # pragma: no cover

    def __str__(self) -> str:
        return f"{self.describe()} (cost {self.cost:g})"


@dataclass
class CompactScript:
    """The post-processed view of an edit script."""

    composites: List[CompositeOperation]
    residual: List[PathOperation]

    @property
    def total_cost(self) -> float:
        return sum(c.cost for c in self.composites) + sum(
            op.cost for op in self.residual
        )

    def summary_lines(self) -> List[str]:
        lines = [str(composite) for composite in self.composites]
        lines.extend(f"{op}" for op in self.residual)
        return lines


def _terminals(op: PathOperation) -> Tuple[str, str]:
    return (op.source_label, op.sink_label)


def detect_composites(
    operations: Sequence[PathOperation],
    group_threshold: int = 2,
) -> CompactScript:
    """Pair and group elementary operations into composites.

    Parameters
    ----------
    operations:
        The elementary script (order is preserved inside groups).
    group_threshold:
        Minimum number of same-terminal insertions (deletions) that form
        a subgraph-growth (shrink) composite.
    """
    remaining: List[Optional[PathOperation]] = list(operations)
    composites: List[CompositeOperation] = []

    def take_pair(first_kind: str, second_kind: str, composite_kind: str):
        for i, op in enumerate(remaining):
            if op is None or op.kind != first_kind:
                continue
            for j in range(len(remaining)):
                partner = remaining[j]
                if (
                    partner is None
                    or j == i
                    or partner.kind != second_kind
                ):
                    continue
                if _terminals(partner) != _terminals(op):
                    continue
                # Prefer pairing paths of different content (a true
                # replacement); identical paths are fork-copy count
                # changes, not replacements.
                if partner.path_labels == op.path_labels:
                    continue
                ordered = [op, partner] if i < j else [partner, op]
                composites.append(
                    CompositeOperation(
                        kind=composite_kind,
                        operations=ordered,
                        source_label=op.source_label,
                        sink_label=op.sink_label,
                    )
                )
                remaining[i] = None
                remaining[j] = None
                return True
        return False

    # 1. Path replacements (delete + insert, same terminals).
    while take_pair(PATH_DELETION, PATH_INSERTION, REPLACE_PATH):
        pass
    # 2. Iteration replacements (contraction + expansion, same loop).
    while take_pair(PATH_CONTRACTION, PATH_EXPANSION, REPLACE_ITERATION):
        pass

    # 3. Group remaining same-terminal runs of insertions / deletions.
    for kind, composite_kind in (
        (PATH_INSERTION, GROW_SUBGRAPH),
        (PATH_DELETION, SHRINK_SUBGRAPH),
    ):
        buckets = {}
        for index, op in enumerate(remaining):
            if op is not None and op.kind == kind:
                buckets.setdefault(_terminals(op), []).append(index)
        for terminals, indices in buckets.items():
            if len(indices) < group_threshold:
                continue
            group = [remaining[i] for i in indices]
            composites.append(
                CompositeOperation(
                    kind=composite_kind,
                    operations=group,
                    source_label=terminals[0],
                    sink_label=terminals[1],
                )
            )
            for i in indices:
                remaining[i] = None

    residual = [op for op in remaining if op is not None]
    return CompactScript(composites=composites, residual=residual)
