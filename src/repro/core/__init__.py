"""repro.core subpackage."""
