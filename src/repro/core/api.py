"""Public differencing API: ``diff_runs`` and :class:`DiffResult`.

This is the library's main entry point, wrapping the full pipeline of the
paper: annotated trees (Algorithms 1, 2, 5) → deletion tables
(Algorithm 3) → edit-distance DP (Algorithms 4, 6) → optimal well-formed
mapping → minimum-cost edit script (Lemma 5.1).

Example
-------
>>> from repro.core.api import diff_runs
>>> from repro import UnitCost
>>> result = diff_runs(run1, run2, cost=UnitCost())   # doctest: +SKIP
>>> result.distance                                    # doctest: +SKIP
4.0

(Client code usually reaches this through :meth:`repro.Workspace.diff`,
which adds store resolution and corpus caching on top.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.edit_distance import EditDistanceComputation
from repro.core.edit_script import EditScript, generate_script
from repro.core.memo import SharedTables
from repro.core.mapping import (
    NodeCorrespondence,
    WellFormedMapping,
    extract_mapping,
    node_correspondence,
)
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError
from repro.workflow.run import WorkflowRun


@dataclass
class DiffResult:
    """The outcome of differencing two runs of one specification."""

    run1: WorkflowRun
    run2: WorkflowRun
    cost_model: CostModel
    distance: float
    computation: EditDistanceComputation
    mapping: WellFormedMapping
    script: Optional[EditScript] = None

    def correspondence(self) -> NodeCorrespondence:
        """Instance-level node matches induced by the optimal mapping."""
        return node_correspondence(
            self.mapping, self.run1.graph, self.run2.graph
        )

    def compact_script(self):
        """Composite-operation digest of the script (§III-C.1 remark).

        Pairs deletions with insertions into path replacements, groups
        subgraph growth/shrink runs, and pairs loop expansion/contraction
        into iteration replacements.  Requires ``with_script=True``.
        """
        from repro.core.postprocess import detect_composites

        if self.script is None:
            raise ReproError(
                "compact_script requires diff_runs(..., with_script=True)"
            )
        return detect_composites(self.script.operations)

    def summary(self) -> str:
        """One-paragraph human-readable digest (PDiffView header)."""
        ops = self.script.operations if self.script else []
        kinds = {}
        for op in ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        breakdown = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return (
            f"delta({self.run1.name}, {self.run2.name}) = "
            f"{self.distance:g} under {self.cost_model.name}"
            + (f" [{breakdown}]" if breakdown else "")
        )


def _align_specs(run1: WorkflowRun, run2: WorkflowRun) -> WorkflowRun:
    """Re-annotate ``run2`` against ``run1``'s specification if needed.

    Raises :class:`ReproError` when the two runs belong to structurally
    different specifications.
    """
    if run2.spec is run1.spec:
        return run2
    if not run2.spec.graph.structurally_equal(run1.spec.graph):
        raise ReproError(
            "runs belong to different specifications: "
            f"{run1.spec.name!r} vs {run2.spec.name!r}"
        )
    return WorkflowRun(run1.spec, run2.graph, name=run2.name)


def diff_runs(
    run1: WorkflowRun,
    run2: WorkflowRun,
    cost: Optional[CostModel] = None,
    with_script: bool = True,
    record_intermediates: bool = False,
    validate_intermediates: bool = False,
    shared: Optional[SharedTables] = None,
    kernel: str = "python",
) -> DiffResult:
    """Compute the edit distance and minimum-cost edit script (O(|E|³)).

    Parameters
    ----------
    run1, run2:
        Valid runs of the *same* specification.  If ``run2`` was validated
        against a different (but structurally identical) specification
        object, it is re-annotated against ``run1``'s.
    cost:
        The cost model ``γ`` (default: :class:`UnitCost`).
    with_script:
        Also generate the edit script (skip for distance-only sweeps —
        the benchmarks measure both configurations).
    record_intermediates / validate_intermediates:
        Keep (and structurally validate) a graph snapshot per operation.
    shared:
        Optional per-batch :class:`~repro.core.memo.SharedTables` so one
        run's deletion tables are built once across a batch of pairs.
    kernel:
        Convolution kernel for freshly built tables (ignored when
        ``shared`` provides them).

    Returns
    -------
    DiffResult
        With ``distance``, the optimal ``mapping``, and (optionally) the
        ``script`` whose total cost equals ``distance``.
    """
    if cost is None:
        cost = shared.cost if shared is not None else UnitCost()
    run2 = _align_specs(run1, run2)

    computation = EditDistanceComputation(
        run1.spec, run1.tree, run2.tree, cost, shared=shared, kernel=kernel
    )
    mapping = extract_mapping(computation)
    script = None
    if with_script:
        script = generate_script(
            computation,
            record_intermediates=record_intermediates,
            validate_intermediates=validate_intermediates,
        )
    return DiffResult(
        run1=run1,
        run2=run2,
        cost_model=cost,
        distance=computation.distance,
        computation=computation,
        mapping=mapping,
        script=script,
    )


def distance_only(
    run1: WorkflowRun,
    run2: WorkflowRun,
    cost: Optional[CostModel] = None,
    assume_aligned: bool = False,
    shared: Optional[SharedTables] = None,
    kernel: str = "python",
) -> float:
    """Compute ``δ(run1, run2)`` without mapping or script extraction.

    The fast path for corpus-scale sweeps (distance matrices, nearest-run
    queries, cache fills): it runs the edit-distance DP only — lazily, with
    the ``≡``-shortcut enabled — skipping the optimal-mapping backtrace
    and script generation that :func:`diff_runs` always pays for.
    Workers in :class:`repro.corpus.service.DiffService` call this per
    pair.

    ``assume_aligned=True`` skips the per-pair specification alignment
    check entirely; callers assert that both runs were annotated against
    the *same* specification object (the corpus layer guarantees this by
    loading every run of a batch through one spec).  ``shared`` reuses
    per-batch deletion/spec tables; ``kernel`` selects the convolution
    implementation for freshly built tables.
    """
    if cost is None:
        cost = shared.cost if shared is not None else UnitCost()
    if not assume_aligned:
        run2 = _align_specs(run1, run2)
    return EditDistanceComputation(
        run1.spec,
        run1.tree,
        run2.tree,
        cost,
        shared=shared,
        distance_only=True,
        kernel=kernel,
    ).distance


def edit_distance(
    run1: WorkflowRun, run2: WorkflowRun, cost: Optional[CostModel] = None
) -> float:
    """Distance-only convenience wrapper (same value as ``diff_runs``)."""
    return distance_only(run1, run2, cost=cost)
