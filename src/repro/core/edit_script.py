"""Edit-script generation from the optimal mapping (Lemma 5.1, §V-VI).

Given the DP of :mod:`repro.core.edit_distance`, this module produces the
minimum-cost *edit script*: an ordered sequence of elementary path
operations transforming run 1 into run 2 such that **every intermediate
graph is a valid run** of the specification.

Construction (per mapped pair, following the proof of Lemma 5.1):

* **S pairs** recurse into their aligned children.
* **F pairs** insert the unmatched copies of run 2, then delete the
  unmatched copies of run 1 (the F node stays true while operating).
* **L pairs** insert unmatched iterations at their aligned positions
  (path *expansions*), then delete unmatched iterations (*contractions*).
* **Stable P pairs** with a matched child delete-then-insert; without one
  they pivot on a non-homologous branch (case 2 of the proof).
* **Unstable P pairs** (Definition 5.2) insert a temporary sibling branch
  — the cheapest elementary subtree of a different specification branch —
  then swap the homologous children, then remove the temporary branch,
  paying exactly ``X(c1) + X(c2) + 2·W_TG`` (Eq. 2).

Whole-subtree deletions are lowered to sequences of elementary deletions
via the Algorithm 3 backtraces (deepest-first, Lemma 5.5); insertions are
their exact reverses.  Operation kinds follow the parent node: insertions/
deletions under P/F parents, expansions/contractions under L parents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.apply import (
    IdAllocator,
    MirrorFreezer,
    MNode,
    build_mirror,
    mirror_from_fragment,
)
from repro.core.edit_distance import EditDistanceComputation
from repro.errors import EditScriptError
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.nodes import NodeType, SPTree
from repro.sptree.validate import validate_run_tree

PATH_INSERTION = "path-insertion"
PATH_DELETION = "path-deletion"
PATH_EXPANSION = "path-expansion"
PATH_CONTRACTION = "path-contraction"

#: Every elementary operation kind, in display order.
OPERATION_KINDS = (
    PATH_INSERTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_CONTRACTION,
)

#: Version tag of the :meth:`PathOperation.to_dict` wire format.  Bump
#: when the schema changes; persisted caches reject unknown versions and
#: recompute (everything serialised here is derived data).
SCRIPT_SCHEMA_VERSION = 1


@dataclass
class PathOperation:
    """One elementary path edit operation of the script."""

    kind: str
    cost: float
    length: int
    source_label: str
    sink_label: str
    path_labels: Tuple[str, ...]
    note: str = ""

    def __str__(self) -> str:
        path = " -> ".join(self.path_labels)
        return f"{self.kind} [{path}] (cost {self.cost:g})"

    # -- stable serialisation (consumed by corpus caches / query index) --
    def to_dict(self) -> dict:
        """A JSON-safe dict capturing the operation exactly.

        The schema is stable across releases (guarded by
        ``SCRIPT_SCHEMA_VERSION`` at the script level): persisted edit
        scripts survive process restarts and store moves, and the query
        engine's inverted index extracts its terms from these fields.
        """
        return {
            "kind": self.kind,
            "cost": self.cost,
            "length": self.length,
            "source": self.source_label,
            "sink": self.sink_label,
            "path": list(self.path_labels),
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PathOperation":
        """Rebuild an operation from :meth:`to_dict` output.

        Raises :class:`EditScriptError` on malformed payloads — callers
        holding persisted data treat that as a cache miss.
        """
        try:
            return cls(
                kind=str(payload["kind"]),
                cost=float(payload["cost"]),
                length=int(payload["length"]),
                source_label=str(payload["source"]),
                sink_label=str(payload["sink"]),
                path_labels=tuple(
                    str(label) for label in payload["path"]
                ),
                note=str(payload.get("note", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EditScriptError(
                f"malformed path-operation payload: {exc}"
            )

    @property
    def interior_labels(self) -> Tuple[str, ...]:
        """Labels strictly between the path's terminals.

        These are the modules the operation actually adds or removes;
        the terminals anchor the path and exist in both runs.  Per-module
        churn aggregations attribute an operation's cost to exactly
        these labels.
        """
        return self.path_labels[1:-1]


def operations_to_payload(operations) -> List[dict]:
    """Serialise an operation sequence (order is part of the script)."""
    return [op.to_dict() for op in operations]


def operations_from_payload(payload) -> List[PathOperation]:
    """Rebuild an operation sequence from :func:`operations_to_payload`."""
    if not isinstance(payload, (list, tuple)):
        raise EditScriptError("operation payload must be a list")
    return [PathOperation.from_dict(item) for item in payload]


@dataclass
class EditScript:
    """The full script plus materialised states.

    Attributes
    ----------
    operations:
        The ordered elementary path operations.
    initial_graph / final_graph:
        Run 1's graph and the transformed graph (``≡`` to run 2).
    intermediate_graphs:
        One graph per operation (present when recording was requested).
    """

    operations: List[PathOperation]
    initial_graph: FlowNetwork
    final_graph: FlowNetwork
    final_tree: SPTree
    intermediate_graphs: Optional[List[FlowNetwork]] = None

    @property
    def total_cost(self) -> float:
        return sum(op.cost for op in self.operations)

    def __len__(self) -> int:
        return len(self.operations)


class ScriptBuilder:
    """Generates and applies the minimum-cost edit script."""

    def __init__(
        self,
        computation: EditDistanceComputation,
        record_intermediates: bool = False,
        validate_intermediates: bool = False,
    ):
        self.comp = computation
        self.record = record_intermediates or validate_intermediates
        self.validate = validate_intermediates
        self.ops: List[PathOperation] = []
        self.snapshots: List[FlowNetwork] = []

        self.root1, self.reg1 = build_mirror(computation.tree1)
        self.reg2m: Dict[int, MNode] = {}
        self.parents2: Dict[int, SPTree] = {}
        for node in computation.tree2.iter_nodes("pre"):
            for child in node.children:
                self.parents2[id(child)] = node

        used_ids = set()
        for tree in (computation.tree1, computation.tree2):
            for leaf in tree.leaves():
                used_ids.add(leaf.edge.source)
                used_ids.add(leaf.edge.sink)
        self.allocator = IdAllocator(used_ids)
        self._root_source = computation.tree1.source
        self._root_sink = computation.tree1.sink

    # ------------------------------------------------------------------
    def build(self) -> EditScript:
        """Generate the script, applying it to the mirror as it goes."""
        initial = self._freeze().to_graph(name="initial")
        self._process_pair(self.comp.tree1, self.comp.tree2)
        final_tree = self._freeze()
        final_graph = final_tree.to_graph(name="final")
        return EditScript(
            operations=self.ops,
            initial_graph=initial,
            final_graph=final_graph,
            final_tree=final_tree,
            intermediate_graphs=self.snapshots if self.record else None,
        )

    def _freeze(self) -> SPTree:
        freezer = MirrorFreezer(IdAllocator())
        return freezer.freeze(self.root1, self._root_source, self._root_sink)

    def _record_op(self, op: PathOperation) -> None:
        self.ops.append(op)
        if not self.record:
            return
        tree = self._freeze()
        if self.validate:
            validate_run_tree(tree, require_origin=True)
        self.snapshots.append(tree.to_graph(name=f"after-op-{len(self.ops)}"))

    # ------------------------------------------------------------------
    # Elementary operations on the mirror
    # ------------------------------------------------------------------
    def _apply_delete(self, mirror: MNode, cost: float, leaves: int, note: str = "") -> None:
        parent = mirror.parent
        if parent is None or parent.kind not in (
            NodeType.P,
            NodeType.F,
            NodeType.L,
        ):
            raise EditScriptError(
                "elementary deletion requires a P/F/L parent"
            )
        if not parent.is_true:
            raise EditScriptError(
                "elementary deletion requires a *true* parent node"
            )
        if not mirror.is_branch_free():
            raise EditScriptError(
                "elementary deletion target is not branch-free"
            )
        if mirror.leaf_count() != leaves:
            raise EditScriptError(
                f"deletion leaf-count mismatch: expected {leaves}, "
                f"found {mirror.leaf_count()}"
            )
        kind = (
            PATH_CONTRACTION if parent.kind is NodeType.L else PATH_DELETION
        )
        labels = tuple(mirror.path_node_labels())
        mirror.detach()
        self._record_op(
            PathOperation(
                kind=kind,
                cost=cost,
                length=leaves,
                source_label=mirror.source_label,
                sink_label=mirror.sink_label,
                path_labels=labels,
                note=note,
            )
        )

    def _apply_insert(
        self,
        fragment: MNode,
        parent: MNode,
        index: Optional[int],
        cost: float,
        leaves: int,
        note: str = "",
    ) -> None:
        if parent.kind not in (NodeType.P, NodeType.F, NodeType.L):
            raise EditScriptError(
                "elementary insertion requires a P/F/L parent"
            )
        if not fragment.is_branch_free():
            raise EditScriptError(
                "elementary insertion fragment is not branch-free"
            )
        if fragment.leaf_count() != leaves:
            raise EditScriptError("insertion leaf-count mismatch")
        kind = (
            PATH_EXPANSION if parent.kind is NodeType.L else PATH_INSERTION
        )
        parent.attach(fragment, index)
        self._record_op(
            PathOperation(
                kind=kind,
                cost=cost,
                length=leaves,
                source_label=fragment.source_label,
                sink_label=fragment.sink_label,
                path_labels=tuple(fragment.path_node_labels()),
                note=note,
            )
        )

    # ------------------------------------------------------------------
    # Whole-subtree operations (sequences of elementary ones)
    # ------------------------------------------------------------------
    def _delete_whole(self, node1: SPTree, note: str = "") -> None:
        plan = self.comp.deletions1.deletion_plan(node1)
        for step in plan:
            mirror = self.reg1.get(id(step.victim))
            if mirror is None:
                raise EditScriptError("deletion victim missing from mirror")
            self._apply_delete(mirror, step.cost, step.leaves, note=note)

    def _mirror_spine(self, spine) -> MNode:
        node = spine.node
        mirror = MNode(
            node.kind,
            node.origin,
            node.source_label,
            node.sink_label,
            pref_source=node.source,
            pref_sink=node.sink,
        )
        self.reg2m[id(node)] = mirror
        for child in spine.children:
            mirror.attach(self._mirror_spine(child))
        return mirror

    def _insert_whole(
        self,
        node2: SPTree,
        parent: MNode,
        index: Optional[int],
        note: str = "",
    ) -> None:
        plan = self.comp.deletions2.deletion_plan(node2)
        for step in reversed(plan):
            spine = self.comp.deletions2.reduced_spine(
                step.victim, step.leaves
            )
            fragment = self._mirror_spine(spine)
            if step.victim is node2:
                target_parent, target_index = parent, index
            else:
                parent2 = self.parents2.get(id(step.victim))
                if parent2 is None:
                    raise EditScriptError("insertion victim has no parent")
                target_parent = self.reg2m.get(id(parent2))
                if target_parent is None:
                    raise EditScriptError(
                        "insertion parent has not been materialised yet"
                    )
                target_index = self._ordered_index(
                    target_parent, parent2, step.victim
                )
            self._apply_insert(
                fragment,
                target_parent,
                target_index,
                step.cost,
                step.leaves,
                note=note,
            )

    def _ordered_index(
        self, parent_mirror: MNode, parent2: SPTree, victim: SPTree
    ) -> Optional[int]:
        if parent_mirror.kind is not NodeType.L:
            return None
        position = 0
        for child in parent2.children:
            if child is victim:
                break
            mirror = self.reg2m.get(id(child))
            if mirror is not None and mirror.parent is parent_mirror:
                position += 1
        return position

    # ------------------------------------------------------------------
    # Per-pair processing (Lemma 5.1 construction)
    # ------------------------------------------------------------------
    def _process_pair(self, v1: SPTree, v2: SPTree) -> None:
        decision = self.comp.decision(v1, v2)
        if v1.kind is NodeType.Q:
            return
        if v1.kind is NodeType.S:
            for c1, c2 in decision.matched:
                self._process_pair(c1, c2)
            return
        if v1.kind is NodeType.P:
            self._process_parallel(v1, v2, decision)
            return
        if v1.kind is NodeType.F:
            self._process_fork(v1, v2, decision)
            return
        self._process_loop(v1, v2, decision)

    def _process_parallel(self, v1, v2, decision) -> None:
        mirror = self.reg1[id(v1)]
        if decision.unstable:
            c1 = v1.children[0]
            c2 = v2.children[0]
            spec_parallel = v1.origin
            sibling = self.comp.spec_tables.w_argmin(spec_parallel, c1.origin)
            w_cost = self.comp.spec_tables.min_insertion_cost(sibling)
            w_leaves = self.comp.spec_tables.min_insertion_leaves(sibling)
            witness = self.comp.spec_tables.witness(
                sibling,
                w_leaves,
                mirror.pref_source,
                mirror.pref_sink,
                self.allocator.fresh,
            )
            temp = mirror_from_fragment(witness)
            self._apply_insert(
                temp, mirror, None, w_cost, w_leaves, note="temporary branch"
            )
            self._delete_whole(c1, note="unstable swap")
            self._insert_whole(c2, mirror, None, note="unstable swap")
            self._apply_delete(
                temp, w_cost, w_leaves, note="temporary branch"
            )
            return

        matched_left = {id(c1) for c1, _ in decision.matched}
        matched_right = {id(c2) for _, c2 in decision.matched}
        unmatched1 = [c for c in v1.children if id(c) not in matched_left]
        unmatched2 = [c for c in v2.children if id(c) not in matched_right]

        if decision.matched:
            # Case 1: a mapped child keeps the P node alive throughout.
            for child in unmatched1:
                self._delete_whole(child)
            for child in unmatched2:
                self._insert_whole(child, mirror, None)
        elif unmatched1 or unmatched2:
            # Case 2: pivot on a non-homologous branch.
            origins1 = {id(c.origin) for c in v1.children}
            pivot = next(
                (c for c in unmatched2 if id(c.origin) not in origins1),
                unmatched2[0] if unmatched2 else None,
            )
            if pivot is None:
                for child in unmatched1:
                    self._delete_whole(child)
            else:
                homologous = next(
                    (
                        c
                        for c in unmatched1
                        if c.origin is pivot.origin
                    ),
                    None,
                )
                if homologous is not None:
                    self._delete_whole(homologous)
                self._insert_whole(pivot, mirror, None)
                for child in unmatched1:
                    if child is not homologous:
                        self._delete_whole(child)
                for child in unmatched2:
                    if child is not pivot:
                        self._insert_whole(child, mirror, None)
        for c1, c2 in decision.matched:
            self._process_pair(c1, c2)

    def _process_fork(self, v1, v2, decision) -> None:
        mirror = self.reg1[id(v1)]
        matched_left = {id(c1) for c1, _ in decision.matched}
        matched_right = {id(c2) for _, c2 in decision.matched}
        for child in v2.children:
            if id(child) not in matched_right:
                self._insert_whole(child, mirror, None)
        for child in v1.children:
            if id(child) not in matched_left:
                self._delete_whole(child)
        for c1, c2 in decision.matched:
            self._process_pair(c1, c2)

    def _process_loop(self, v1, v2, decision) -> None:
        mirror = self.reg1[id(v1)]
        matched_right = {id(c2): c1 for c1, c2 in decision.matched}
        matched_left = {id(c1) for c1, _ in decision.matched}
        anchor = 0
        for child2 in v2.children:
            partner = matched_right.get(id(child2))
            if partner is not None:
                partner_mirror = self.reg1[id(partner)]
                anchor = mirror.children.index(partner_mirror) + 1
                continue
            self._insert_whole(child2, mirror, anchor)
            anchor += 1
        for child1 in v1.children:
            if id(child1) not in matched_left:
                self._delete_whole(child1)
        for c1, c2 in decision.matched:
            self._process_pair(c1, c2)


def generate_script(
    computation: EditDistanceComputation,
    record_intermediates: bool = False,
    validate_intermediates: bool = False,
) -> EditScript:
    """Generate the minimum-cost edit script for a computed diff."""
    builder = ScriptBuilder(
        computation,
        record_intermediates=record_intermediates,
        validate_intermediates=validate_intermediates,
    )
    return builder.build()
