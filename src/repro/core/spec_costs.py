"""Specification-side insertion costs and the ``W_TG`` table (Eq. 2).

An *elementary subtree* insertable below a specification node ``u`` is a
branch-free run of ``TG[u]`` — graph-wise, a simple source-sink path of the
subgraph (parallel nodes pick one branch, forks and loops execute once;
true loops are excluded from branch-free subtrees, so single iterations are
exact, not an approximation).

This module computes, per specification tree node:

* the set of **achievable leaf counts** of branch-free runs (as a Python
  integer bitmask — bit ``l`` set iff a path of length ``l`` exists);
* the **minimum insertion cost** ``min_l γ(l, s(u), t(u))`` over that set;
* for every P node and child, ``W_TG(u, c)`` — the cheapest elementary
  subtree rooted at a *sibling* of ``c`` (Definition 5.2 / Eq. 2, the
  unstable-pair correction); and
* **witness construction**: a concrete branch-free run tree realising a
  chosen (sibling, leaf count), used by the script generator to
  materialise the temporary subtree of Lemma 5.1 case 3.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.costs.base import CostModel
from repro.errors import EditScriptError
from repro.sptree.nodes import EdgeRef, NodeType, SPTree

INF = math.inf


def achievable_leaf_counts(node: SPTree) -> List[int]:
    """Sorted list of achievable branch-free leaf counts below ``node``."""
    mask = _achievable_mask(node, {})
    return [l for l in range(mask.bit_length()) if mask >> l & 1]


def _achievable_mask(node: SPTree, memo: Dict[int, int]) -> int:
    cached = memo.get(id(node))
    if cached is not None:
        return cached
    if node.kind is NodeType.Q:
        mask = 1 << 1
    elif node.kind is NodeType.S:
        mask = 1
        for child in node.children:
            child_mask = _achievable_mask(child, memo)
            acc = 0
            shift_mask = mask
            bit = 0
            while shift_mask:
                if shift_mask & 1:
                    acc |= child_mask << bit
                shift_mask >>= 1
                bit += 1
            mask = acc
    elif node.kind is NodeType.P:
        mask = 0
        for child in node.children:
            mask |= _achievable_mask(child, memo)
    else:  # F or L: a single copy / iteration.
        mask = _achievable_mask(node.children[0], memo)
    memo[id(node)] = mask
    return mask


class SpecCostTables:
    """Insertion-cost tables for one specification under a cost model."""

    def __init__(self, spec, cost: CostModel):
        self.spec = spec
        self.cost = cost
        self._mask_memo: Dict[int, int] = {}
        self._min_cost: Dict[int, float] = {}
        self._min_leaves: Dict[int, int] = {}
        for node in spec.tree.iter_nodes("post"):
            self._compute_min(node)

    # ------------------------------------------------------------------
    def mask(self, node: SPTree) -> int:
        """Achievable-leaf-count bitmask for a spec node."""
        return _achievable_mask(node, self._mask_memo)

    def _compute_min(self, node: SPTree) -> None:
        mask = self.mask(node)
        best = INF
        best_leaves = -1
        length = mask.bit_length()
        for leaves in range(1, length):
            if not mask >> leaves & 1:
                continue
            candidate = self.cost.path_cost(
                leaves, node.source_label, node.sink_label
            )
            if candidate < best:
                best = candidate
                best_leaves = leaves
        self._min_cost[id(node)] = best
        self._min_leaves[id(node)] = best_leaves

    def min_insertion_cost(self, node: SPTree) -> float:
        """Cheapest elementary subtree derivable from a spec node."""
        return self._min_cost[id(node)]

    def min_insertion_leaves(self, node: SPTree) -> int:
        """Leaf count realising :meth:`min_insertion_cost`."""
        return self._min_leaves[id(node)]

    def w(self, p_node: SPTree, child: SPTree) -> float:
        """``W_TG(h(v1), h(c1))``: cheapest elementary sibling subtree.

        ``p_node`` is a P node of the specification tree and ``child`` one
        of its children; the result is the minimum insertion cost over the
        *other* children (every spec P node has >= 2 children, so this is
        always finite for admissible cost models).
        """
        best = INF
        for sibling in p_node.children:
            if sibling is child:
                continue
            candidate = self._min_cost[id(sibling)]
            if candidate < best:
                best = candidate
        return best

    def w_argmin(self, p_node: SPTree, child: SPTree) -> SPTree:
        """The sibling realising :meth:`w` (for witness construction)."""
        best = INF
        chosen = None
        for sibling in p_node.children:
            if sibling is child:
                continue
            candidate = self._min_cost[id(sibling)]
            if candidate < best:
                best = candidate
                chosen = sibling
        if chosen is None:
            raise EditScriptError(
                "specification P node has no alternative sibling"
            )
        return chosen

    # ------------------------------------------------------------------
    # Witness construction
    # ------------------------------------------------------------------
    def witness(
        self,
        node: SPTree,
        leaves: int,
        source_id,
        sink_id,
        fresh: Callable[[str], object],
    ) -> SPTree:
        """Materialise a branch-free run of ``TG[node]`` with ``leaves`` leaves.

        ``source_id``/``sink_id`` anchor the path's terminals (typically
        shared instances of the insertion point); ``fresh(label)`` allocates
        interior instance ids.  The returned tree carries origins into the
        specification tree.
        """
        mask = self.mask(node)
        if leaves < 1 or not mask >> leaves & 1:
            raise EditScriptError(
                f"no branch-free run of this spec node with {leaves} leaves"
            )
        return self._build(node, leaves, source_id, sink_id, fresh)

    def _build(self, node, leaves, source_id, sink_id, fresh):
        if node.kind is NodeType.Q:
            ref = EdgeRef(
                source=source_id,
                sink=sink_id,
                source_label=node.source_label,
                sink_label=node.sink_label,
                key=0,
            )
            return SPTree(NodeType.Q, (), edge=ref, origin=node)
        if node.kind is NodeType.S:
            allocation = self._series_split(node.children, leaves)
            bounds = [source_id]
            for child in node.children[:-1]:
                bounds.append(fresh(child.sink_label))
            bounds.append(sink_id)
            children = tuple(
                self._build(
                    child, allocation[i], bounds[i], bounds[i + 1], fresh
                )
                for i, child in enumerate(node.children)
            )
            return SPTree(NodeType.S, children, origin=node)
        if node.kind is NodeType.P:
            for child in node.children:
                if self.mask(child) >> leaves & 1:
                    inner = self._build(
                        child, leaves, source_id, sink_id, fresh
                    )
                    return SPTree(NodeType.P, (inner,), origin=node)
            raise EditScriptError("inconsistent parallel witness backtrace")
        # F or L: a single copy / iteration.
        inner = self._build(
            node.children[0], leaves, source_id, sink_id, fresh
        )
        return SPTree(node.kind, (inner,), origin=node)

    def _series_split(self, children, leaves: int) -> List[int]:
        suffix_masks = [1]
        for child in reversed(children):
            child_mask = self.mask(child)
            acc = 0
            shift_mask = suffix_masks[-1]
            bit = 0
            while shift_mask:
                if shift_mask & 1:
                    acc |= child_mask << bit
                shift_mask >>= 1
                bit += 1
            suffix_masks.append(acc)
        suffix_masks.reverse()  # suffix_masks[i] covers children[i:]

        allocation: List[int] = []
        remaining = leaves
        for index, child in enumerate(children):
            child_mask = self.mask(child)
            chosen = -1
            for count in range(1, child_mask.bit_length()):
                if not child_mask >> count & 1:
                    continue
                rest = remaining - count
                if rest >= 0 and suffix_masks[index + 1] >> rest & 1:
                    chosen = count
                    break
            if chosen < 0:
                raise EditScriptError("inconsistent series witness backtrace")
            allocation.append(chosen)
            remaining -= chosen
        if remaining != 0:
            raise EditScriptError("series witness allocation mismatch")
        return allocation
