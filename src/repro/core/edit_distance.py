"""Algorithms 4 and 6: the edit-distance dynamic program (Section V-C).

The edit distance between two annotated run trees equals the minimum cost
of a *well-formed mapping* (Theorem 3).  The DP computes, bottom-up over
pairs of **homologous** nodes (equal origins in the specification tree),
the minimum mapping cost ``γ(M(v1, v2))``:

* **Q pairs** map with zero cost;
* **S pairs** map all corresponding children (Definition 5.1.5);
* **P pairs** either match homologous children when beneficial (case 3b),
  or — when both are single-child with homologous children — weigh the
  child mapping against the *unstable* route costing
  ``X(c1) + X(c2) + 2·W_TG`` (case 3a, Eq. 2 and Fig. 8);
* **F pairs** solve a minimum-cost bipartite matching over the copies
  (Hungarian algorithm, Fig. 9);
* **L pairs** solve a minimum-cost **non-crossing** matching over the
  ordered iterations (Algorithm 6).

The total work is O(|E|³) as analysed in Section V-D.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.deletion import DeletionTables
from repro.core.spec_costs import SpecCostTables
from repro.costs.base import CostModel
from repro.errors import EditScriptError
from repro.matching.hungarian import match_children
from repro.matching.noncrossing import noncrossing_match
from repro.sptree.nodes import NodeType, SPTree

INF = math.inf


@dataclass
class PairDecision:
    """DP cell for a homologous pair ``(v1, v2)``.

    ``cost`` is ``γ(M(v1, v2))`` for the optimal mapping of the two
    subtrees; ``matched`` lists the matched child pairs (empty for Q);
    ``unstable`` marks P pairs taking the Eq. 2 route.
    """

    cost: float
    matched: List[Tuple[SPTree, SPTree]] = field(default_factory=list)
    unstable: bool = False


class EditDistanceComputation:
    """Bottom-up DP over homologous node pairs of two annotated run trees."""

    def __init__(self, spec, tree1: SPTree, tree2: SPTree, cost: CostModel):
        self.spec = spec
        self.tree1 = tree1
        self.tree2 = tree2
        self.cost = cost
        self.deletions1 = DeletionTables(tree1, cost)
        self.deletions2 = DeletionTables(tree2, cost)
        self.spec_tables = SpecCostTables(spec, cost)
        self._pairs: Dict[Tuple[int, int], PairDecision] = {}
        self._nodes1 = self._group_by_origin(tree1)
        self._nodes2 = self._group_by_origin(tree2)
        self._run()

    # ------------------------------------------------------------------
    @staticmethod
    def _group_by_origin(tree: SPTree) -> Dict[int, List[SPTree]]:
        groups: Dict[int, List[SPTree]] = {}
        for node in tree.iter_nodes("pre"):
            if node.origin is None:
                raise EditScriptError(
                    "run tree node lacks an origin; build trees via "
                    "annotate_run_tree or the executor"
                )
            groups.setdefault(id(node.origin), []).append(node)
        return groups

    def _run(self) -> None:
        for spec_node in self.spec.tree.iter_nodes("post"):
            left = self._nodes1.get(id(spec_node), [])
            right = self._nodes2.get(id(spec_node), [])
            for v1 in left:
                for v2 in right:
                    self._pairs[(id(v1), id(v2))] = self._decide(v1, v2)

    # ------------------------------------------------------------------
    def decision(self, v1: SPTree, v2: SPTree) -> PairDecision:
        """The DP cell for a homologous pair."""
        return self._pairs[(id(v1), id(v2))]

    def pair_cost(self, v1: SPTree, v2: SPTree) -> float:
        """``γ(M(v1, v2))`` — minimum mapping cost for the pair."""
        return self._pairs[(id(v1), id(v2))].cost

    @property
    def distance(self) -> float:
        """``δ(T1, T2) = γ(M(r1, r2))`` (Theorem 3)."""
        return self.pair_cost(self.tree1, self.tree2)

    # ------------------------------------------------------------------
    def _decide(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if v1.kind is not v2.kind:  # pragma: no cover - impossible for valid runs
            raise EditScriptError(
                f"homologous nodes disagree on type: {v1.kind} vs {v2.kind}"
            )
        if v1.kind is NodeType.Q:
            return PairDecision(0.0)
        if v1.kind is NodeType.S:
            return self._decide_series(v1, v2)
        if v1.kind is NodeType.P:
            return self._decide_parallel(v1, v2)
        if v1.kind is NodeType.F:
            return self._decide_fork(v1, v2)
        return self._decide_loop(v1, v2)

    def _decide_series(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if v1.degree != v2.degree:  # pragma: no cover - valid runs agree
            raise EditScriptError("homologous S nodes disagree on arity")
        total = 0.0
        matched = []
        for c1, c2 in zip(v1.children, v2.children):
            total += self.pair_cost(c1, c2)
            matched.append((c1, c2))
        return PairDecision(total, matched)

    def _decide_parallel(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if (
            v1.degree == 1
            and v2.degree == 1
            and v1.children[0].origin is v2.children[0].origin
        ):
            # Case 3a: potentially unstable (Definition 5.2).
            c1 = v1.children[0]
            c2 = v2.children[0]
            mapped = self.pair_cost(c1, c2)
            w_value = self.spec_tables.w(v1.origin, c1.origin)
            unstable = (
                self.deletions1.x(c1) + self.deletions2.x(c2) + 2.0 * w_value
            )
            if mapped <= unstable:
                return PairDecision(mapped, [(c1, c2)])
            return PairDecision(unstable, [], unstable=True)

        # Case 3b: at most one child per origin on each side.
        by_origin1 = {id(c.origin): c for c in v1.children}
        by_origin2 = {id(c.origin): c for c in v2.children}
        total = 0.0
        matched = []
        for key, c1 in by_origin1.items():
            c2 = by_origin2.get(key)
            delete_cost = self.deletions1.x(c1)
            if c2 is None:
                total += delete_cost
                continue
            replace = delete_cost + self.deletions2.x(c2)
            mapped = self.pair_cost(c1, c2)
            if mapped <= replace:
                total += mapped
                matched.append((c1, c2))
            else:
                total += replace
        for key, c2 in by_origin2.items():
            if key not in by_origin1:
                total += self.deletions2.x(c2)
        return PairDecision(total, matched)

    def _decide_fork(self, v1: SPTree, v2: SPTree) -> PairDecision:
        children1 = list(v1.children)
        children2 = list(v2.children)
        total, matches = match_children(
            lambda i, j: self.pair_cost(children1[i], children2[j]),
            [self.deletions1.x(c) for c in children1],
            [self.deletions2.x(c) for c in children2],
        )
        matched = [(children1[i], children2[j]) for i, j in matches]
        return PairDecision(total, matched)

    def _decide_loop(self, v1: SPTree, v2: SPTree) -> PairDecision:
        children1 = list(v1.children)
        children2 = list(v2.children)
        total, matches = noncrossing_match(
            lambda i, j: self.pair_cost(children1[i], children2[j]),
            [self.deletions1.x(c) for c in children1],
            [self.deletions2.x(c) for c in children2],
        )
        matched = [(children1[i], children2[j]) for i, j in matches]
        return PairDecision(total, matched)
