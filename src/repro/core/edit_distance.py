"""Algorithms 4 and 6: the edit-distance dynamic program (Section V-C).

The edit distance between two annotated run trees equals the minimum cost
of a *well-formed mapping* (Theorem 3).  The DP computes, bottom-up over
pairs of **homologous** nodes (equal origins in the specification tree),
the minimum mapping cost ``γ(M(v1, v2))``:

* **Q pairs** map with zero cost;
* **S pairs** map all corresponding children (Definition 5.1.5);
* **P pairs** either match homologous children when beneficial (case 3b),
  or — when both are single-child with homologous children — weigh the
  child mapping against the *unstable* route costing
  ``X(c1) + X(c2) + 2·W_TG`` (case 3a, Eq. 2 and Fig. 8);
* **F pairs** solve a minimum-cost bipartite matching over the copies
  (Hungarian algorithm, Fig. 9);
* **L pairs** solve a minimum-cost **non-crossing** matching over the
  ordered iterations (Algorithm 6).

The total work is O(|E|³) as analysed in Section V-D.

Cells are computed **lazily**: :meth:`decision` memoises on demand from
the root pair down, so only reachable homologous pairs are ever priced.
Two fast-path options trim the reachable set further without changing a
single bit of any produced value:

* ``shared=`` reuses per-run :class:`DeletionTables` and the per-spec
  :class:`SpecCostTables` across the pairs of a batch
  (:class:`~repro.core.memo.SharedTables`) — the tables are pure
  functions of ``(tree, cost)``, sharing merely avoids rebuilding them;
* ``distance_only=True`` enables the ``≡``-shortcut: a homologous pair
  whose subtrees agree on the *origin-annotated* structure key maps at
  cost exactly ``0.0`` (induction over the recurrences: every branch
  bottoms out in same-origin Q pairs, and all intermediate sums/minima
  are sums and minima of exact ``0.0``s), so the whole subtree product
  is skipped.  The returned cell carries no ``matched`` list, which is
  why the shortcut is confined to distance-only use — mapping and
  script extraction need the lists and must construct the computation
  without it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.deletion import DeletionTables
from repro.core.memo import SharedTables
from repro.core.spec_costs import SpecCostTables
from repro.costs.base import CostModel
from repro.errors import EditScriptError
from repro.matching.hungarian import match_children
from repro.matching.noncrossing import noncrossing_match
from repro.sptree.nodes import NodeType, SPTree

INF = math.inf


@dataclass
class PairDecision:
    """DP cell for a homologous pair ``(v1, v2)``.

    ``cost`` is ``γ(M(v1, v2))`` for the optimal mapping of the two
    subtrees; ``matched`` lists the matched child pairs (empty for Q);
    ``unstable`` marks P pairs taking the Eq. 2 route.
    """

    cost: float
    matched: List[Tuple[SPTree, SPTree]] = field(default_factory=list)
    unstable: bool = False


class EditDistanceComputation:
    """Demand-driven DP over homologous node pairs of two annotated run
    trees.

    Parameters
    ----------
    spec, tree1, tree2, cost:
        The specification, the two annotated run trees, and ``γ``.
    shared:
        An optional :class:`~repro.core.memo.SharedTables` carrying
        memoised deletion/spec tables for a batch; must be bound to the
        same cost model object.
    distance_only:
        Enables the ``≡``-shortcut (see the module docstring).  The
        resulting cells are unfit for mapping extraction.
    kernel:
        Convolution kernel for freshly built tables
        (:mod:`repro.core.kernel`); ignored when ``shared`` provides
        them.
    """

    def __init__(
        self,
        spec,
        tree1: SPTree,
        tree2: SPTree,
        cost: CostModel,
        shared: Optional[SharedTables] = None,
        distance_only: bool = False,
        kernel: str = "python",
    ):
        self.spec = spec
        self.tree1 = tree1
        self.tree2 = tree2
        self.cost = cost
        if shared is not None:
            if shared.cost is not cost:
                raise EditScriptError(
                    "shared tables are bound to a different cost model "
                    "object; build one SharedTables per (batch, cost)"
                )
            self.deletions1 = shared.deletions(tree1)
            self.deletions2 = shared.deletions(tree2)
            self.spec_tables = shared.spec_tables(spec)
        else:
            self.deletions1 = DeletionTables(tree1, cost, kernel=kernel)
            self.deletions2 = DeletionTables(tree2, cost, kernel=kernel)
            self.spec_tables = SpecCostTables(spec, cost)
        self._distance_only = distance_only
        self._pairs: Dict[Tuple[int, int], PairDecision] = {}
        # ``≡``-shortcut state: per-node interned origin-structure keys
        # (equal ids ⇔ equal (origin, structure) recursively).
        if shared is not None:
            # Batch-shared interning: each tree's keys are built once
            # per batch, not once per pair.  The merged map covers every
            # node of both trees, so ``_origin_id`` never falls through
            # to the (empty) per-instance intern table.  The walk also
            # validated the origins.
            merged = dict(shared.origin_ids(tree1))
            merged.update(shared.origin_ids(tree2))
            self._origin_ids = merged
            self._key_intern: Dict[tuple, int] = {}
        else:
            self._origin_ids = {}
            self._key_intern = {}
            self._validate_origins(tree1)
            self._validate_origins(tree2)

    # ------------------------------------------------------------------
    @staticmethod
    def _validate_origins(tree: SPTree) -> None:
        for node in tree.iter_nodes("pre"):
            if node.origin is None:
                raise EditScriptError(
                    "run tree node lacks an origin; build trees via "
                    "annotate_run_tree or the executor"
                )

    def _origin_id(self, node: SPTree) -> int:
        """Interned origin-annotated structure key of a subtree.

        Equal ids certify that two subtrees are ``≡`` *and* pair up
        origin-for-origin — the condition under which the DP's optimal
        mapping cost is exactly ``0.0`` (not merely close to it).
        """
        memo = self._origin_ids
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if node.kind is NodeType.Q:
            key: tuple = ("Q", id(node.origin))
        else:
            child_ids = [self._origin_id(c) for c in node.children]
            if node.kind in (NodeType.P, NodeType.F):
                child_ids.sort()
            key = (node.kind.value, id(node.origin), tuple(child_ids))
        interned = self._key_intern.setdefault(
            key, len(self._key_intern)
        )
        memo[id(node)] = interned
        return interned

    # ------------------------------------------------------------------
    def decision(self, v1: SPTree, v2: SPTree) -> PairDecision:
        """The DP cell for a homologous pair (computed on demand)."""
        key = (id(v1), id(v2))
        cell = self._pairs.get(key)
        if cell is None:
            if self._distance_only and self._origin_id(
                v1
            ) == self._origin_id(v2):
                # ``≡``-shortcut: exact 0.0, no matched list (see the
                # module docstring for why this is distance-only).
                cell = PairDecision(0.0)
            else:
                cell = self._decide(v1, v2)
            self._pairs[key] = cell
        return cell

    def pair_cost(self, v1: SPTree, v2: SPTree) -> float:
        """``γ(M(v1, v2))`` — minimum mapping cost for the pair."""
        return self.decision(v1, v2).cost

    @property
    def distance(self) -> float:
        """``δ(T1, T2) = γ(M(r1, r2))`` (Theorem 3)."""
        return self.pair_cost(self.tree1, self.tree2)

    # ------------------------------------------------------------------
    def _decide(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if v1.kind is not v2.kind:  # pragma: no cover - impossible for valid runs
            raise EditScriptError(
                f"homologous nodes disagree on type: {v1.kind} vs {v2.kind}"
            )
        if v1.kind is NodeType.Q:
            return PairDecision(0.0)
        if v1.kind is NodeType.S:
            return self._decide_series(v1, v2)
        if v1.kind is NodeType.P:
            return self._decide_parallel(v1, v2)
        if v1.kind is NodeType.F:
            return self._decide_fork(v1, v2)
        return self._decide_loop(v1, v2)

    def _decide_series(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if v1.degree != v2.degree:  # pragma: no cover - valid runs agree
            raise EditScriptError("homologous S nodes disagree on arity")
        total = 0.0
        matched = []
        for c1, c2 in zip(v1.children, v2.children):
            total += self.pair_cost(c1, c2)
            matched.append((c1, c2))
        return PairDecision(total, matched)

    def _decide_parallel(self, v1: SPTree, v2: SPTree) -> PairDecision:
        if (
            v1.degree == 1
            and v2.degree == 1
            and v1.children[0].origin is v2.children[0].origin
        ):
            # Case 3a: potentially unstable (Definition 5.2).
            c1 = v1.children[0]
            c2 = v2.children[0]
            mapped = self.pair_cost(c1, c2)
            w_value = self.spec_tables.w(v1.origin, c1.origin)
            unstable = (
                self.deletions1.x(c1) + self.deletions2.x(c2) + 2.0 * w_value
            )
            if mapped <= unstable:
                return PairDecision(mapped, [(c1, c2)])
            return PairDecision(unstable, [], unstable=True)

        # Case 3b: at most one child per origin on each side.
        by_origin1 = {id(c.origin): c for c in v1.children}
        by_origin2 = {id(c.origin): c for c in v2.children}
        total = 0.0
        matched = []
        for key, c1 in by_origin1.items():
            c2 = by_origin2.get(key)
            delete_cost = self.deletions1.x(c1)
            if c2 is None:
                total += delete_cost
                continue
            replace = delete_cost + self.deletions2.x(c2)
            mapped = self.pair_cost(c1, c2)
            if mapped <= replace:
                total += mapped
                matched.append((c1, c2))
            else:
                total += replace
        for key, c2 in by_origin2.items():
            if key not in by_origin1:
                total += self.deletions2.x(c2)
        return PairDecision(total, matched)

    def _decide_fork(self, v1: SPTree, v2: SPTree) -> PairDecision:
        children1 = list(v1.children)
        children2 = list(v2.children)
        total, matches = match_children(
            lambda i, j: self.pair_cost(children1[i], children2[j]),
            [self.deletions1.x(c) for c in children1],
            [self.deletions2.x(c) for c in children2],
        )
        matched = [(children1[i], children2[j]) for i, j in matches]
        return PairDecision(total, matched)

    def _decide_loop(self, v1: SPTree, v2: SPTree) -> PairDecision:
        children1 = list(v1.children)
        children2 = list(v2.children)
        total, matches = noncrossing_match(
            lambda i, j: self.pair_cost(children1[i], children2[j]),
            [self.deletions1.x(c) for c in children1],
            [self.deletions2.x(c) for c in children2],
        )
        matched = [(children1[i], children2[j]) for i, j in matches]
        return PairDecision(total, matched)
