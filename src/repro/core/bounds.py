"""Cheap, never-overestimating lower bounds on the edit distance.

Every elementary edit operation inserts or deletes one elementary path
of length ``l`` (equivalently: an elementary subtree with ``l`` Q
leaves) at cost ``γ(l, A, B)``, and changes the run tree's multiset of
leaf-edge label pairs by exactly ``l`` units.  Loop stitch edges are
*not* Q leaves, so counting Q-leaf label pairs (not graph edges) is
what keeps the accounting exact for loops: deleting a one-edge loop
iteration costs ``γ(1)`` and removes one Q leaf — and two graph edges.

From that invariant, for two runs with label-pair multisets ``c₁`` and
``c₂`` and ``D = Σ |c₁(e) − c₂(e)|``, any edit script's op lengths
``l_i`` satisfy ``Σ l_i ≥ D`` with ``1 ≤ l_i ≤ L``, where ``L`` is the
maximum achievable branch-free leaf count of the *specification* root
(every elementary subtree is a branch-free run of some spec subtree,
and the root's achievable set dominates every node's).  For the paper's
power family ``γ(l) = l^ε``:

* ``0 ≤ ε ≤ 1`` (concave, subadditive): the cheapest feasible length
  multiset is ``⌊D/L⌋`` full pieces plus one remainder piece, so
  ``δ ≥ ⌊D/L⌋·L^ε + r^ε`` with ``r = D mod L`` — this specialises to
  ``δ ≥ D`` for the length model and ``δ ≥ ⌈D/L⌉`` for the unit model
  (the streaming hub's label-surplus bound, generalised);
* ``ε < 0`` (decreasing): every op costs at least ``L^ε`` and at least
  ``⌈D/L⌉`` ops are needed, so ``δ ≥ ⌈D/L⌉·L^ε``.

:class:`~repro.costs.standard.LabelWeightedCost` over a power base
scales by its minimum weight.  Models this module cannot reason about
(``CallableCost``, custom subclasses) get the trivially sound bound
``0.0`` — a bound may be useless, never wrong.

The corpus service persists each run's profile beside its fingerprint
(:mod:`repro.corpus.index`), so warm-path bound checks never re-parse a
run's XML; :func:`encode_profile`/:func:`decode_profile` define the
JSON shape.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.spec_costs import _achievable_mask
from repro.costs.base import CostModel
from repro.costs.standard import LabelWeightedCost, PowerCost
from repro.sptree.nodes import SPTree

#: A leaf profile: Q-leaf ``(source_label, sink_label)`` pair counts.
LeafProfile = Dict[Tuple[str, str], int]

#: Separator for JSON-encoded label pairs (unit separator: cannot occur
#: in well-formed specification labels read from XML attribute values).
_PAIR_SEP = "\x1f"

#: Relative slack for bounds whose arithmetic is not exactly
#: representable in binary floating point.  The packing and triangle
#: inequalities are proven over the reals; when ``ε ∉ {0, 1}`` (or a
#: weight multiplies in) the *rounded* bound could exceed a *rounded*
#: true distance by an ULP, and a pruned query would then drop a pair
#: the unpruned oracle keeps.  Scaling such bounds down by 1e-9
#: relative — nine orders of magnitude above double rounding error,
#: nine below any distance worth pruning on — restores a sound margin
#: at no practical loss of pruning power.  Integer-exact cases
#: (``ε ∈ {0, 1}``, counts below 2⁵³) skip the slack: their floats are
#: exact and so is the comparison.
_FLOAT_GUARD_DOWN = 1.0 - 1e-9
_FLOAT_GUARD_UP = 1.0 + 1e-9


def leaf_profile(tree: SPTree) -> LeafProfile:
    """The multiset of Q-leaf terminal-label pairs of a run tree.

    Exactly the quantity every elementary edit operation moves by its
    own length; loop stitch edges are implicit graph edges, not Q
    leaves, and correctly do not appear.
    """
    profile: LeafProfile = {}
    for edge in tree.leaf_edges():
        pair = (edge.source_label, edge.sink_label)
        profile[pair] = profile.get(pair, 0) + 1
    return profile


def profile_delta(
    profile_a: Mapping[Tuple[str, str], int],
    profile_b: Mapping[Tuple[str, str], int],
) -> int:
    """``D = Σ_pairs |c₁(pair) − c₂(pair)|`` — the multiset distance."""
    delta = 0
    for pair, count in profile_a.items():
        delta += abs(count - profile_b.get(pair, 0))
    for pair, count in profile_b.items():
        if pair not in profile_a:
            delta += count
    return delta


def spec_max_op_leaves(spec) -> int:
    """``L``: the longest elementary path any edit op can move.

    The maximum achievable branch-free leaf count of the specification
    root; every elementary subtree insertable/deletable anywhere is a
    branch-free run of some spec subtree, whose achievable counts the
    root's dominate (S parents add siblings, P parents take unions).
    """
    mask = _achievable_mask(spec.tree, {})
    return mask.bit_length() - 1


def _power_packing_bound(
    delta: int, max_leaves: int, epsilon: float
) -> float:
    """The packing bound for ``γ(l) = l^ε`` (``delta > 0``)."""
    if max_leaves < 1:
        return 0.0
    if epsilon == 1.0:
        return float(delta)  # exact: Σ l_i ≥ D, integer float
    if epsilon == 0.0:
        full, remainder = divmod(delta, max_leaves)
        return float(full + (1 if remainder else 0))  # exact op count
    if epsilon < 0.0:
        pieces = -(-delta // max_leaves)  # ceil
        return (
            pieces * float(max_leaves) ** epsilon * _FLOAT_GUARD_DOWN
        )
    full, remainder = divmod(delta, max_leaves)
    bound = full * float(max_leaves) ** epsilon
    if remainder:
        bound += float(remainder) ** epsilon
    return bound * _FLOAT_GUARD_DOWN


def packing_lower_bound(
    delta: int, max_leaves: int, cost: CostModel
) -> float:
    """``δ ≥ packing_lower_bound(D, L, γ)`` for any two runs with
    label-pair multiset distance ``D`` under a spec with op ceiling
    ``L``.

    Returns ``0.0`` (sound, vacuous) for cost models outside the
    power/weighted-power family.
    """
    if delta <= 0:
        return 0.0
    if isinstance(cost, PowerCost):
        return _power_packing_bound(delta, max_leaves, cost.epsilon)
    if isinstance(cost, LabelWeightedCost) and isinstance(
        cost.base, PowerCost
    ):
        weights = list(cost.weights.values())
        weights.append(cost.default_weight)
        # The weight multiplication rounds once more: guard it.
        return (
            min(weights)
            * _power_packing_bound(delta, max_leaves, cost.base.epsilon)
            * _FLOAT_GUARD_DOWN
        )
    return 0.0


def distance_lower_bound(
    profile_a: Mapping[Tuple[str, str], int],
    profile_b: Mapping[Tuple[str, str], int],
    max_leaves: int,
    cost: CostModel,
) -> float:
    """Lower bound on ``δ`` between two runs given their leaf profiles."""
    return packing_lower_bound(
        profile_delta(profile_a, profile_b), max_leaves, cost
    )


def run_lower_bound(run_a, run_b, cost: CostModel) -> float:
    """Convenience face over in-memory runs (profiles computed fresh)."""
    return distance_lower_bound(
        leaf_profile(run_a.tree),
        leaf_profile(run_b.tree),
        spec_max_op_leaves(run_a.spec),
        cost,
    )


# -- persistence ---------------------------------------------------------
def encode_profile(profile: LeafProfile) -> Dict[str, int]:
    """A JSON-safe encoding of a leaf profile (stable key order not
    required: consumers treat it as a mapping)."""
    return {
        f"{source}{_PAIR_SEP}{sink}": count
        for (source, sink), count in profile.items()
    }


def decode_profile(payload) -> Optional[LeafProfile]:
    """Decode :func:`encode_profile` output; ``None`` on malformed data
    (older index files simply lack profiles — recompute lazily)."""
    if not isinstance(payload, dict):
        return None
    profile: LeafProfile = {}
    for key, count in payload.items():
        if not isinstance(key, str) or _PAIR_SEP not in key:
            return None
        if not isinstance(count, int) or isinstance(count, bool):
            return None
        if count < 0:
            return None
        source, sink = key.split(_PAIR_SEP, 1)
        profile[(source, sink)] = count
    return profile


def triangle_lower_bound(known_qb: float, known_bc: float) -> float:
    """``δ(q, c) ≥ |δ(q, b) − δ(b, c)|`` — one pivot's triangle bound.

    Guarded downward: the inequality holds over the reals, and the
    operand distances are themselves rounded.
    """
    return abs(known_qb - known_bc) * _FLOAT_GUARD_DOWN


def triangle_upper_bound(known_qb: float, known_bc: float) -> float:
    """``δ(q, c) ≤ δ(q, b) + δ(b, c)`` — one pivot's triangle ceiling.

    Guarded upward, mirroring :func:`triangle_lower_bound`.
    """
    return (known_qb + known_bc) * _FLOAT_GUARD_UP


def is_sound_for(cost: CostModel) -> bool:
    """Whether this module produces non-trivial bounds for ``cost``.

    ``False`` means every bound degenerates to ``0.0`` — callers can
    skip profile work entirely for such models.
    """
    if isinstance(cost, PowerCost):
        return True
    return isinstance(cost, LabelWeightedCost) and isinstance(
        cost.base, PowerCost
    )
