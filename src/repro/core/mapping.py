"""Well-formed mappings between annotated run trees (Section V-A).

A well-formed mapping (Definition 5.1) is a one-to-one, root-mapped,
specification-preserving, parent-preserving, S-children-preserving partial
mapping between the nodes of two annotated run trees.  Its cost (Eqs. 2-3)
sums, per mapped pair, the deletion/insertion costs of unmapped children —
plus the ``2·W_TG`` correction for unstably matched P pairs.

This module extracts the optimal mapping from the DP of
:mod:`repro.core.edit_distance`, re-evaluates its cost from first
principles (used by the tests to cross-check the DP), validates the five
conditions of Definition 5.1, and derives the induced correspondence
between *graph* nodes of the two runs (used by PDiffView).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.edit_distance import EditDistanceComputation
from repro.errors import EditScriptError
from repro.sptree.nodes import NodeType, SPTree


@dataclass
class MappedPair:
    """One pair of the mapping with its Eq. 2/3 cost contribution."""

    left: SPTree
    right: SPTree
    unstable: bool
    local_cost: float


@dataclass
class WellFormedMapping:
    """The optimal well-formed mapping between two annotated run trees."""

    pairs: List[MappedPair]
    cost: float

    def left_nodes(self) -> List[SPTree]:
        return [pair.left for pair in self.pairs]

    def right_nodes(self) -> List[SPTree]:
        return [pair.right for pair in self.pairs]

    def pair_count(self) -> int:
        return len(self.pairs)


def extract_mapping(computation: EditDistanceComputation) -> WellFormedMapping:
    """Walk the DP decisions from the root pair and collect mapped pairs."""
    pairs: List[MappedPair] = []
    total = 0.0

    def visit(v1: SPTree, v2: SPTree) -> None:
        nonlocal total
        decision = computation.decision(v1, v2)
        matched_left = {id(c1) for c1, _ in decision.matched}
        matched_right = {id(c2) for _, c2 in decision.matched}
        if decision.unstable:
            c1 = v1.children[0]
            c2 = v2.children[0]
            local = (
                computation.deletions1.x(c1)
                + computation.deletions2.x(c2)
                + 2.0 * computation.spec_tables.w(v1.origin, c1.origin)
            )
        else:
            local = sum(
                computation.deletions1.x(child)
                for child in v1.children
                if id(child) not in matched_left
            ) + sum(
                computation.deletions2.x(child)
                for child in v2.children
                if id(child) not in matched_right
            )
        pairs.append(MappedPair(v1, v2, decision.unstable, local))
        total += local
        for c1, c2 in decision.matched:
            visit(c1, c2)

    visit(computation.tree1, computation.tree2)
    return WellFormedMapping(pairs, total)


def validate_well_formed(
    mapping: WellFormedMapping, tree1: SPTree, tree2: SPTree
) -> None:
    """Check the five conditions of Definition 5.1.

    Raises :class:`EditScriptError` naming the violated condition.
    """
    parents1 = _parent_index(tree1)
    parents2 = _parent_index(tree2)
    left_seen: Set[int] = set()
    right_seen: Set[int] = set()
    pair_ids: Set[Tuple[int, int]] = set()
    for pair in mapping.pairs:
        if id(pair.left) in left_seen or id(pair.right) in right_seen:
            raise EditScriptError("mapping is not one-to-one")
        left_seen.add(id(pair.left))
        right_seen.add(id(pair.right))
        pair_ids.add((id(pair.left), id(pair.right)))

    if (id(tree1), id(tree2)) not in pair_ids:
        raise EditScriptError("roots are not mapped")

    for pair in mapping.pairs:
        if pair.left.origin is not pair.right.origin:
            raise EditScriptError(
                "mapped pair is not homologous (specification not preserved)"
            )
        parent1 = parents1.get(id(pair.left))
        parent2 = parents2.get(id(pair.right))
        if parent1 is None and parent2 is None:
            continue
        if parent1 is None or parent2 is None:
            raise EditScriptError("exactly one of a mapped pair is a root")
        if (id(parent1), id(parent2)) not in pair_ids:
            raise EditScriptError("parents of a mapped pair are not mapped")

    for pair in mapping.pairs:
        if pair.left.kind is NodeType.S:
            for c1, c2 in zip(pair.left.children, pair.right.children):
                if (id(c1), id(c2)) not in pair_ids:
                    raise EditScriptError(
                        "children of a mapped S pair are not mapped"
                    )


def _parent_index(tree: SPTree) -> Dict[int, SPTree]:
    parents: Dict[int, SPTree] = {}
    for node in tree.iter_nodes("pre"):
        for child in node.children:
            parents[id(child)] = node
    return parents


@dataclass
class NodeCorrespondence:
    """Graph-node correspondence induced by a mapping.

    ``matched`` maps run-1 node ids to run-2 node ids for instances that
    play the same structural role; ``left_only``/``right_only`` are the
    instances without counterparts (touched by the edit script).
    """

    matched: Dict[object, object]
    left_only: List[object]
    right_only: List[object]


def node_correspondence(
    mapping: WellFormedMapping, run1_graph, run2_graph
) -> NodeCorrespondence:
    """Derive instance-level matches from mapped tree pairs.

    Every mapped pair's subtrees share terminal roles, so their source and
    sink instances correspond; mapped Q pairs additionally match both edge
    endpoints.
    """
    matched: Dict[object, object] = {}
    for pair in mapping.pairs:
        matched.setdefault(pair.left.source, pair.right.source)
        matched.setdefault(pair.left.sink, pair.right.sink)
    right_hit = set(matched.values())
    left_only = [n for n in run1_graph.nodes() if n not in matched]
    right_only = [n for n in run2_graph.nodes() if n not in right_hit]
    return NodeCorrespondence(matched, left_only, right_only)
