"""The workspace wire API: protocol, typed results, error envelopes.

This module pins down the *public surface* of a workspace as an explicit
:class:`WorkspaceAPI` :class:`~typing.Protocol`, and gives every request
and response that crosses it a typed, versioned, JSON-round-trippable
dataclass:

* :class:`DiffOutcome` — one priced diff (``to_dict``/``from_dict``);
* :class:`MatrixResult` — an all-pairs distance matrix that still quacks
  like the historical ``{(a, b): distance}`` mapping;
* :class:`QueryFilter` — the declarative, wire-safe subset of the ``Q``
  predicate algebra (kinds, touched labels, cost and op-count ranges);
* :class:`QueryPage` — one page of query results with an opaque cursor;
* :class:`StatsSnapshot` — the cache/DP counters of a workspace;
* :class:`ImportSummary` — the outcome of a remote PROV import;
* :class:`ErrorEnvelope` — the structured error payload the HTTP
  service returns and the remote client raises from.

Two implementations satisfy the protocol: the in-process
:class:`repro.workspace.Workspace` and the HTTP
:class:`repro.client.RemoteWorkspace` — the protocol-conformance test
suite is parametrized over both, so local and remote behaviour cannot
drift.  Every payload carries a schema version (:data:`WIRE_VERSION`);
``from_dict`` rejects unknown versions with a
:class:`~repro.errors.ReproError` so stale clients fail loudly rather
than misparse.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.edit_script import PathOperation
from repro.errors import ReproError

#: Schema version shared by every wire payload in this module.  Bump on
#: any incompatible field change; ``from_dict`` rejects other versions.
WIRE_VERSION = 1

#: :class:`StatsSnapshot` carries its own version: v2 added the
#: ``derived`` block (hit ratios, contention totals).  ``from_dict``
#: accepts both versions — a v1 payload is simply a snapshot with no
#: derived values — so new clients read old servers and vice versa.
STATS_WIRE_VERSION = 2
_STATS_COMPATIBLE_VERSIONS = (1, STATS_WIRE_VERSION)


def _require_version(payload: Any, what: str) -> dict:
    """Validate the common envelope of a wire payload."""
    if not isinstance(payload, dict):
        raise ReproError(f"{what} payload must be a JSON object")
    if payload.get("v") != WIRE_VERSION:
        raise ReproError(
            f"unsupported {what} schema version {payload.get('v')!r} "
            f"(this client speaks v{WIRE_VERSION})"
        )
    return payload


# -- pagination cursors -------------------------------------------------
def encode_cursor(offset: int) -> str:
    """Opaque pagination cursor for a result offset.

    The encoding (URL-safe base64 over a tiny versioned JSON object) is
    an implementation detail — clients must treat cursors as opaque
    tokens, passing back exactly what a :class:`QueryPage` handed out.
    """
    raw = json.dumps({"v": WIRE_VERSION, "o": int(offset)})
    return base64.urlsafe_b64encode(raw.encode("ascii")).decode("ascii")


def decode_cursor(cursor: Optional[str]) -> int:
    """The result offset a cursor denotes (``None``/empty → 0).

    Raises :class:`ReproError` on garbage — a malformed cursor is a
    client bug, not a reason to silently restart from the first page.
    """
    if not cursor:
        return 0
    try:
        raw = json.loads(
            base64.urlsafe_b64decode(cursor.encode("ascii"))
        )
        if not isinstance(raw, dict) or raw.get("v") != WIRE_VERSION:
            raise ValueError("cursor version mismatch")
        offset = int(raw["o"])
    except (
        ValueError,
        KeyError,
        TypeError,
        AttributeError,
        binascii.Error,
    ) as exc:
        raise ReproError(f"invalid pagination cursor: {exc}") from None
    if offset < 0:
        raise ReproError("invalid pagination cursor: negative offset")
    return offset


def _operations_to_payload(operations: Sequence[PathOperation]) -> list:
    return [op.to_dict() for op in operations]


def _operations_from_payload(payload: Any) -> List[PathOperation]:
    if not isinstance(payload, list):
        raise ReproError("operations payload must be a list")
    return [PathOperation.from_dict(op) for op in payload]


# -- diff outcomes ------------------------------------------------------
@dataclass
class DiffOutcome:
    """One priced diff: a directed run pair and its minimum-cost script.

    The workspace's uniform result type — :meth:`WorkspaceAPI.diff`
    returns one, ``diff_many`` streams them, :class:`QueryPage` pages
    them.  ``operations`` is the full elementary edit script from
    ``run_a`` to ``run_b``; its summed cost equals ``distance`` by
    construction.  ``cost_key`` is the cost model's stable cache-key
    identity (``None`` for uncacheable models), so an outcome remains
    attributable to the exact pricing after transport.
    """

    spec_name: str
    run_a: str
    run_b: str
    cost_model: str  #: display name of the cost model used
    distance: float
    operations: List[PathOperation]
    cost_key: Optional[str] = None  #: cache-key identity of the model

    @property
    def pair(self) -> Tuple[str, str]:
        """The directed ``(run_a, run_b)`` name pair."""
        return (self.run_a, self.run_b)

    @property
    def op_count(self) -> int:
        """Number of elementary operations in the script."""
        return len(self.operations)

    def to_dict(self) -> dict:
        """JSON-safe representation (the wire and ``--json`` payload)."""
        return {
            "v": WIRE_VERSION,
            "spec": self.spec_name,
            "run_a": self.run_a,
            "run_b": self.run_b,
            "cost_model": self.cost_model,
            "cost_key": self.cost_key,
            "distance": self.distance,
            "operations": _operations_to_payload(self.operations),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "DiffOutcome":
        """Rebuild an outcome from :meth:`to_dict` output (exact inverse).

        Raises :class:`ReproError` on malformed payloads or unknown
        schema versions.
        """
        payload = _require_version(payload, "DiffOutcome")
        try:
            return cls(
                spec_name=str(payload["spec"]),
                run_a=str(payload["run_a"]),
                run_b=str(payload["run_b"]),
                cost_model=str(payload["cost_model"]),
                distance=float(payload["distance"]),
                operations=_operations_from_payload(
                    payload["operations"]
                ),
                cost_key=(
                    None
                    if payload.get("cost_key") is None
                    else str(payload["cost_key"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed DiffOutcome payload: {exc}"
            ) from None

    def __str__(self) -> str:
        return (
            f"delta({self.run_a}, {self.run_b}) = {self.distance:g} "
            f"under {self.cost_model} ({self.op_count} ops)"
        )


# -- distance matrices --------------------------------------------------
@dataclass(eq=False)
class MatrixResult(Mapping):
    """An all-pairs distance matrix as a typed, transportable result.

    Behaves as a read-only :class:`~typing.Mapping` over the historical
    ``{(run_a, run_b): distance}`` shape (unordered pairs in listing
    order), so every pre-existing consumer of
    ``Workspace.matrix()`` — iteration, ``.items()``, ``.get()``,
    equality against a plain dict — keeps working, while the wire gains
    the spec name, cost identity, and run listing alongside the values.
    """

    spec_name: str
    cost_model: str
    cost_key: Optional[str]
    runs: List[str]
    distances: Dict[Tuple[str, str], float]

    # -- Mapping face ---------------------------------------------------
    def __getitem__(self, pair: Tuple[str, str]) -> float:
        return self.distances[pair]

    def __iter__(self) -> Iterator[Tuple[str, str]]:
        return iter(self.distances)

    def __len__(self) -> int:
        return len(self.distances)

    def __eq__(self, other: object) -> bool:
        """Field equality against another result; value equality
        against any plain mapping (the legacy dict shape)."""
        if isinstance(other, MatrixResult):
            return (
                self.spec_name == other.spec_name
                and self.cost_model == other.cost_model
                and self.cost_key == other.cost_key
                and self.runs == other.runs
                and self.distances == other.distances
            )
        if isinstance(other, Mapping):
            return self.distances == dict(other)
        return NotImplemented

    __hash__ = None  # mutable mapping-like: unhashable, like dict

    def to_dict(self) -> dict:
        """JSON-safe representation; pairs become ``[a, b, distance]``
        triples (names may contain any character, so no string joins)."""
        return {
            "v": WIRE_VERSION,
            "spec": self.spec_name,
            "cost_model": self.cost_model,
            "cost_key": self.cost_key,
            "runs": list(self.runs),
            "distances": [
                [a, b, value]
                for (a, b), value in self.distances.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "MatrixResult":
        """Rebuild a matrix from :meth:`to_dict` output (exact inverse)."""
        payload = _require_version(payload, "MatrixResult")
        try:
            distances = {
                (str(a), str(b)): float(value)
                for a, b, value in payload["distances"]
            }
            return cls(
                spec_name=str(payload["spec"]),
                cost_model=str(payload["cost_model"]),
                cost_key=(
                    None
                    if payload.get("cost_key") is None
                    else str(payload["cost_key"])
                ),
                runs=[str(name) for name in payload["runs"]],
                distances=distances,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed MatrixResult payload: {exc}"
            ) from None


# -- query filters and pages --------------------------------------------
@dataclass(frozen=True)
class QueryFilter:
    """The declarative, wire-safe query filter (AND of its clauses).

    Mirrors exactly the predicate surface the CLI exposes: operation
    kinds (OR-ed), touched labels (OR-ed), and cost / op-count ranges,
    all AND-ed together.  An empty filter matches every diff.  Live
    :class:`~repro.query.predicates.Predicate` objects are strictly
    more expressive but are arbitrary Python — only this declarative
    subset travels over HTTP.
    """

    kinds: Tuple[str, ...] = ()
    touches: Tuple[str, ...] = ()
    min_cost: Optional[float] = None
    max_cost: Optional[float] = None
    min_ops: Optional[int] = None
    max_ops: Optional[int] = None
    #: Operational-metadata clauses (OR-ed within, AND-ed with the
    #: rest): restrict the corpus to run pairs whose *both* runs were
    #: ingested by one of these users / on one of these hosts (see
    #: :mod:`repro.obs.runmeta`).  Runs without metadata never match a
    #: non-empty clause.
    users: Tuple[str, ...] = ()
    hosts: Tuple[str, ...] = ()

    def is_empty(self) -> bool:
        """True when no clause is set (the match-everything filter)."""
        return not (
            self.kinds
            or self.touches
            or self.min_cost is not None
            or self.max_cost is not None
            or self.min_ops is not None
            or self.max_ops is not None
            or self.users
            or self.hosts
        )

    def to_predicate(self):
        """The equivalent ``Q`` predicate, or ``None`` when empty."""
        from repro.query.predicates import Predicate, Q

        parts: List[Predicate] = []
        if self.kinds:
            parts.append(Q.op_kind(*self.kinds))
        if self.touches:
            parts.append(Q.touches(*self.touches))
        if self.min_cost is not None or self.max_cost is not None:
            parts.append(Q.cost(min=self.min_cost, max=self.max_cost))
        if self.min_ops is not None or self.max_ops is not None:
            parts.append(
                Q.op_count(min=self.min_ops, max=self.max_ops)
            )
        if not parts:
            return None
        predicate = parts[0]
        for part in parts[1:]:
            predicate = predicate & part
        return predicate

    def describe(self) -> str:
        """Human-readable form, matching the predicate's own wording."""
        predicate = self.to_predicate()
        parts = [] if predicate is None else [predicate.describe()]
        if self.users:
            parts.append("user in {" + ", ".join(self.users) + "}")
        if self.hosts:
            parts.append("host in {" + ", ".join(self.hosts) + "}")
        return " and ".join(parts) if parts else "*"

    def to_dict(self) -> dict:
        """JSON-safe representation (the ``filter`` member of a query)."""
        return {
            "v": WIRE_VERSION,
            "kinds": list(self.kinds),
            "touches": list(self.touches),
            "min_cost": self.min_cost,
            "max_cost": self.max_cost,
            "min_ops": self.min_ops,
            "max_ops": self.max_ops,
            "users": list(self.users),
            "hosts": list(self.hosts),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "QueryFilter":
        """Rebuild a filter from :meth:`to_dict` output (``None`` and
        ``{}`` are accepted as the empty filter)."""
        if payload is None or payload == {}:
            return cls()
        payload = _require_version(payload, "QueryFilter")
        try:
            return cls(
                kinds=tuple(
                    str(kind) for kind in payload.get("kinds", ())
                ),
                touches=tuple(
                    str(label) for label in payload.get("touches", ())
                ),
                min_cost=_opt_number(payload.get("min_cost"), float),
                max_cost=_opt_number(payload.get("max_cost"), float),
                min_ops=_opt_number(payload.get("min_ops"), int),
                max_ops=_opt_number(payload.get("max_ops"), int),
                users=tuple(
                    str(user) for user in payload.get("users", ())
                ),
                hosts=tuple(
                    str(host) for host in payload.get("hosts", ())
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed QueryFilter payload: {exc}"
            ) from None


def _opt_number(value, convert):
    """``convert(value)`` with ``None`` passed through."""
    return None if value is None else convert(value)


@dataclass
class QueryPage:
    """One page of query results, with an opaque continuation cursor.

    ``items`` are full :class:`DiffOutcome` objects (script included) in
    the corpus's deterministic listing order; ``total_matches`` counts
    the whole result set, however many pages it spans.  ``next_cursor``
    is ``None`` on the final page, else the token to pass back to fetch
    the next one.
    """

    spec_name: str
    cost_model: str
    cost_key: Optional[str]
    filter: QueryFilter
    total_matches: int
    items: List[DiffOutcome]
    cursor: Optional[str] = None  #: the cursor this page answered
    next_cursor: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-safe representation of the page."""
        return {
            "v": WIRE_VERSION,
            "spec": self.spec_name,
            "cost_model": self.cost_model,
            "cost_key": self.cost_key,
            "filter": self.filter.to_dict(),
            "total_matches": self.total_matches,
            "items": [item.to_dict() for item in self.items],
            "cursor": self.cursor,
            "next_cursor": self.next_cursor,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "QueryPage":
        """Rebuild a page from :meth:`to_dict` output (exact inverse)."""
        payload = _require_version(payload, "QueryPage")
        try:
            return cls(
                spec_name=str(payload["spec"]),
                cost_model=str(payload["cost_model"]),
                cost_key=(
                    None
                    if payload.get("cost_key") is None
                    else str(payload["cost_key"])
                ),
                filter=QueryFilter.from_dict(payload.get("filter")),
                total_matches=int(payload["total_matches"]),
                items=[
                    DiffOutcome.from_dict(item)
                    for item in payload["items"]
                ],
                cursor=payload.get("cursor"),
                next_cursor=payload.get("next_cursor"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed QueryPage payload: {exc}"
            ) from None


# -- stats ---------------------------------------------------------------
@dataclass
class StatsSnapshot:
    """A point-in-time snapshot of a workspace's service counters.

    ``counters`` carries the corpus service's integral cache/DP
    statistics (``memory_hits``, ``disk_hits``, ``computed_pairs``,
    ``script_*``, ...); ``derived`` (schema v2) carries the float-valued
    derived quantities — per-tier hit ratios (``memory_hit_ratio``,
    ``disk_hit_ratio``, ``script_hit_ratio``) and contention totals
    (``lock_wait_seconds``); ``source`` records where the snapshot was
    taken (``"local"`` or the remote base URL) so aggregated dashboards
    can attribute it.

    Versioning: snapshots serialise as :data:`STATS_WIRE_VERSION` (2);
    :meth:`from_dict` also accepts v1 payloads (pre-observability
    servers), which simply carry no ``derived`` block.
    """

    counters: Dict[str, int]
    source: str = "local"
    derived: Dict[str, float] = field(default_factory=dict)

    def __getitem__(self, name: str) -> float:
        if name in self.counters:
            return self.counters[name]
        return self.derived[name]

    def get(self, name: str, default: float = 0) -> float:
        """A counter's (or derived value's) value, like ``dict.get``."""
        if name in self.counters:
            return self.counters[name]
        return self.derived.get(name, default)

    def to_dict(self) -> dict:
        """JSON-safe representation of the snapshot."""
        return {
            "v": STATS_WIRE_VERSION,
            "source": self.source,
            "counters": dict(self.counters),
            "derived": dict(self.derived),
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "StatsSnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output.

        Accepts every version in the snapshot's compatibility window
        (currently v1 and v2) — v1 payloads decode with an empty
        ``derived`` block.
        """
        if not isinstance(payload, dict):
            raise ReproError("StatsSnapshot payload must be a JSON object")
        if payload.get("v") not in _STATS_COMPATIBLE_VERSIONS:
            raise ReproError(
                f"unsupported StatsSnapshot schema version "
                f"{payload.get('v')!r} (this client speaks "
                f"v{STATS_WIRE_VERSION} and reads v1)"
            )
        counters = payload.get("counters")
        if not isinstance(counters, dict):
            raise ReproError("malformed StatsSnapshot payload")
        derived = payload.get("derived", {})
        if not isinstance(derived, dict):
            raise ReproError("malformed StatsSnapshot payload")
        return cls(
            counters={str(k): int(v) for k, v in counters.items()},
            source=str(payload.get("source", "local")),
            derived={str(k): float(v) for k, v in derived.items()},
        )


# -- PROV import summaries ----------------------------------------------
@dataclass
class ImportSummary:
    """The transportable outcome of a PROV-JSON/OPM import.

    The local :meth:`Workspace.import_prov` returns live objects (the
    reconstructed run and specification); over the wire the server
    reports this summary instead: names, sizes, the normalisation
    report (as its stable dict form plus display lines), and — when the
    import also priced the newcomer — the new corpus distance pairs.
    """

    spec_name: str
    run_name: str
    origin: str
    nodes: int
    edges: int
    report: Dict[str, Any] = field(default_factory=dict)
    report_lines: List[str] = field(default_factory=list)
    new_pairs: Dict[Tuple[str, str], float] = field(
        default_factory=dict
    )

    def to_dict(self) -> dict:
        """JSON-safe representation; pairs become ``[a, b, d]`` triples."""
        return {
            "v": WIRE_VERSION,
            "spec": self.spec_name,
            "run": self.run_name,
            "origin": self.origin,
            "nodes": self.nodes,
            "edges": self.edges,
            "report": dict(self.report),
            "report_lines": list(self.report_lines),
            "new_pairs": [
                [a, b, value]
                for (a, b), value in self.new_pairs.items()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "ImportSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        payload = _require_version(payload, "ImportSummary")
        try:
            return cls(
                spec_name=str(payload["spec"]),
                run_name=str(payload["run"]),
                origin=str(payload["origin"]),
                nodes=int(payload["nodes"]),
                edges=int(payload["edges"]),
                report=dict(payload.get("report", {})),
                report_lines=[
                    str(line)
                    for line in payload.get("report_lines", [])
                ],
                new_pairs={
                    (str(a), str(b)): float(value)
                    for a, b, value in payload.get("new_pairs", [])
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed ImportSummary payload: {exc}"
            ) from None


# -- streaming-ingestion summaries --------------------------------------
@dataclass
class StreamSummary:
    """Aggregate counters of a workspace's streaming-ingestion hub.

    The ``/stats`` face of :class:`repro.stream.hub.StreamHub` — the
    same numbers the ``stream_*`` metric families expose on
    ``/metrics``, so the two surfaces stay in agreement.  All counters
    are lifetime totals except ``open_sessions`` (a point-in-time
    gauge).
    """

    open_sessions: int = 0
    sessions_opened: int = 0
    events_ingested: int = 0
    runs_closed: int = 0
    resumed: int = 0
    duplicates: int = 0
    rejected_frames: int = 0
    flagged: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation of the summary."""
        return {
            "v": WIRE_VERSION,
            "open_sessions": self.open_sessions,
            "sessions_opened": self.sessions_opened,
            "events_ingested": self.events_ingested,
            "runs_closed": self.runs_closed,
            "resumed": self.resumed,
            "duplicates": self.duplicates,
            "rejected_frames": self.rejected_frames,
            "flagged": self.flagged,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "StreamSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        payload = _require_version(payload, "StreamSummary")
        try:
            return cls(
                open_sessions=int(payload.get("open_sessions", 0)),
                sessions_opened=int(payload.get("sessions_opened", 0)),
                events_ingested=int(payload.get("events_ingested", 0)),
                runs_closed=int(payload.get("runs_closed", 0)),
                resumed=int(payload.get("resumed", 0)),
                duplicates=int(payload.get("duplicates", 0)),
                rejected_frames=int(payload.get("rejected_frames", 0)),
                flagged=int(payload.get("flagged", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise ReproError(
                f"malformed StreamSummary payload: {exc}"
            ) from None

    def as_counters(self, prefix: str = "stream_") -> Dict[str, int]:
        """The summary as flat ``/stats`` counters (``stream_*``)."""
        return {
            prefix + key: value
            for key, value in self.to_dict().items()
            if key != "v"
        }


# -- error envelopes ----------------------------------------------------
#: HTTP status for each error type; anything else derived from
#: :class:`ReproError` is a 400 (client error), everything else a 500.
STATUS_BY_ERROR_TYPE = {
    "NotFoundError": 404,
    "ConflictError": 409,
    "PayloadTooLargeError": 413,
    "ServiceUnavailableError": 503,
}

#: Envelope type used for non-:class:`ReproError` server failures; the
#: client maps it back to a bare :class:`ReproError` (never leaking a
#: server traceback into the caller).
INTERNAL_ERROR_TYPE = "InternalServerError"


@dataclass
class ErrorEnvelope:
    """The structured error payload of the HTTP diff service.

    The server serialises every failure into one of these (no
    tracebacks on the wire); the remote client rebuilds the matching
    :class:`ReproError` subclass from it, so error handling code works
    identically against a local or remote workspace.
    """

    type: str
    message: str
    status: int
    request_id: Optional[str] = None

    @classmethod
    def from_exception(
        cls,
        exc: BaseException,
        request_id: Optional[str] = None,
    ) -> "ErrorEnvelope":
        """Classify an exception into an envelope (and its status)."""
        if isinstance(exc, ReproError):
            name = type(exc).__name__
            status = 400
            for klass in type(exc).__mro__:
                if klass.__name__ in STATUS_BY_ERROR_TYPE:
                    status = STATUS_BY_ERROR_TYPE[klass.__name__]
                    break
            return cls(
                type=name,
                message=str(exc),
                status=status,
                request_id=request_id,
            )
        return cls(
            type=INTERNAL_ERROR_TYPE,
            message=f"internal server error: {type(exc).__name__}",
            status=500,
            request_id=request_id,
        )

    def to_exception(self) -> ReproError:
        """The :class:`ReproError` (subclass) this envelope denotes.

        The server's correlation ID (when the envelope carries one) is
        attached to the raised error as a ``request_id`` attribute so
        callers can quote it when filing reports against server logs.
        """
        import repro.errors as _errors

        klass = getattr(_errors, self.type, None)
        if not (
            isinstance(klass, type) and issubclass(klass, ReproError)
        ):
            klass = ReproError
        error = klass(self.message)
        error.request_id = self.request_id
        return error

    def to_dict(self) -> dict:
        """The wire shape: ``{"error": {type, message, status[, request_id]}}``."""
        error: Dict[str, Any] = {
            "type": self.type,
            "message": self.message,
            "status": self.status,
        }
        if self.request_id is not None:
            error["request_id"] = self.request_id
        return {"error": error}

    @classmethod
    def from_payload(cls, payload: Any) -> Optional["ErrorEnvelope"]:
        """Parse a response body into an envelope, or ``None`` when the
        body is not an error envelope (e.g. a proxy's HTML error page)."""
        if not isinstance(payload, dict):
            return None
        error = payload.get("error")
        if not isinstance(error, dict):
            return None
        try:
            request_id = error.get("request_id")
            return cls(
                type=str(error["type"]),
                message=str(error["message"]),
                status=int(error["status"]),
                request_id=(
                    None if request_id is None else str(request_id)
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None


# -- the protocol -------------------------------------------------------
@runtime_checkable
class WorkspaceAPI(Protocol):
    """The public surface a provenance workspace exposes.

    Structural (``typing.Protocol``): any object with these methods is
    a workspace, wherever the work happens.  The two shipped
    implementations are :class:`repro.workspace.Workspace` (in-process,
    store-backed) and :class:`repro.client.RemoteWorkspace` (the same
    surface spoken over HTTP to a ``repro serve`` process) — client
    code, the CLI, and the examples run unchanged against either.

    Methods that accept ``spec=None`` resolve the workspace's default
    specification (unambiguous only when exactly one is registered);
    ``cost=None`` uses the workspace's configured default model.
    """

    def specifications(self) -> List[str]:
        """Names of every specification this workspace knows."""
        ...

    def specification(self, name: str):
        """The named :class:`WorkflowSpecification`."""
        ...

    def register(self, spec) -> None:
        """Persist a specification and adopt it for later calls."""
        ...

    def runs(self, spec: Optional[str] = None) -> List[str]:
        """Names of the stored runs of a specification."""
        ...

    def run(self, name: str, spec: Optional[str] = None):
        """A stored run as a :class:`WorkflowRun` object."""
        ...

    def import_run(self, run) -> None:
        """Persist a run without pricing it against the corpus."""
        ...

    def generate_run(
        self,
        name: str,
        spec: Optional[str] = None,
        params=None,
        seed: Optional[int] = None,
    ):
        """Generate, persist and return a random run of a specification."""
        ...

    def diff(
        self, a, b, spec: Optional[str] = None, cost=None
    ) -> DiffOutcome:
        """The minimum-cost edit script from ``a`` to ``b``, priced."""
        ...

    def matrix(
        self,
        spec: Optional[str] = None,
        cost=None,
        runs: Optional[Sequence[str]] = None,
    ) -> MatrixResult:
        """All-pairs distances over the (restricted) corpus."""
        ...

    def nearest(
        self,
        run_name: str,
        k: Optional[int] = None,
        spec: Optional[str] = None,
        cost=None,
    ) -> List[Tuple[str, float]]:
        """``run_name``'s neighbours by ascending distance."""
        ...

    def medoid(
        self, spec: Optional[str] = None, cost=None
    ) -> Tuple[str, float]:
        """The corpus's most central run, ``(name, mean distance)``."""
        ...

    def outliers(
        self,
        spec: Optional[str] = None,
        cost=None,
        top: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Runs ranked by descending mean distance to the corpus."""
        ...

    def query_page(
        self,
        filter: Optional[QueryFilter] = None,
        spec: Optional[str] = None,
        cost=None,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> QueryPage:
        """One page of the diffs matching a :class:`QueryFilter`."""
        ...

    def export_prov(
        self, run_name: str, spec: Optional[str] = None
    ) -> str:
        """A stored run as deterministic PROV-JSON text."""
        ...

    def stats_snapshot(self) -> StatsSnapshot:
        """The service counters as a typed :class:`StatsSnapshot`."""
        ...

    def stream(
        self,
        spec: str,
        run: str,
        session: Optional[str] = None,
        threshold: Optional[float] = None,
    ):
        """An open :class:`repro.stream.client.StreamSession` for one
        run, ingested live event by event."""
        ...

    def stream_live(self) -> List[Any]:
        """Live analytics snapshots of every open streaming session
        (:class:`repro.stream.events.LiveStatus` items)."""
        ...
