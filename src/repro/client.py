"""The remote workspace: the :class:`WorkspaceAPI` spoken over HTTP.

:class:`RemoteWorkspace` is a drop-in stand-in for
:class:`repro.workspace.Workspace` against a running ``repro serve``
endpoint — it implements the same
:class:`~repro.api_types.WorkspaceAPI` protocol, so the CLI, the
examples, and any client code run unchanged whether the differencing
happens in-process or on a server::

    from repro import RemoteWorkspace
    ws = RemoteWorkspace("http://diff.lab.internal:8321")
    ws.diff("monday", "tuesday").distance
    ws.matrix()
    ws.query_page(QueryFilter(kinds=("path-deletion",)))

Built on ``urllib`` only (stdlib all the way down).  Three behaviours
worth knowing:

* **Errors round-trip.**  The server's structured
  :class:`~repro.api_types.ErrorEnvelope` failures are re-raised as the
  matching :class:`~repro.errors.ReproError` subclass
  (:class:`~repro.errors.NotFoundError` for 404s,
  :class:`~repro.errors.ConflictError` for 409s, ...), so error
  handling code is implementation-agnostic.
* **Diff reads revalidate.**  The client remembers the ``ETag`` of
  every diff it fetched and sends ``If-None-Match``; a ``304`` reuses
  the cached outcome without re-downloading (or recomputing) anything.
* **Run objects travel as PROV-JSON.**  ``import_run``/``run`` use the
  interchange layer's exact round trip (embedded plan), so a run
  pushed through the wire fingerprints identically to one saved
  locally — which is what makes local and remote diffs bit-identical.

Cost models are sent as their wire spec (``unit``, ``length``,
``power:E``); weighted/callable models are refused client-side rather
than silently re-priced by the server.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.api_types import (
    DiffOutcome,
    ErrorEnvelope,
    MatrixResult,
    QueryFilter,
    QueryPage,
    StatsSnapshot,
)
from repro.core.api import diff_runs
from repro.corpus.analytics import k_nearest
from repro.corpus.cache import LRUCache
from repro.corpus.analytics import medoid as _medoid
from repro.corpus.analytics import outliers as _outliers
from repro.corpus.fingerprint import cost_model_key
from repro.costs.base import CostModel
from repro.costs.standard import cost_to_spec
from repro.errors import ReproError, TransportError
from repro.io.xml_io import specification_from_xml, specification_to_xml
from repro.obs.logging import current_request_id, new_request_id
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

#: Content types (mirrors :mod:`repro.service.app`).
JSON_TYPE = "application/json"
PROV_JSON_TYPE = "application/prov+json"
XML_TYPE = "application/xml"

#: Methods safe to retry after a connection-level failure (the request
#: either never reached the server or may be repeated without effect).
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "PUT", "DELETE"})

#: Backoff schedule between idempotent retries, in seconds.
_RETRY_DELAYS = (0.1, 0.3)


def _quote(name: str) -> str:
    """Percent-encode a path segment (names may contain anything)."""
    return urllib.parse.quote(name, safe="")


class RemoteWorkspace:
    """A provenance workspace served by a remote ``repro serve``.

    Parameters
    ----------
    url:
        Service base URL, e.g. ``http://127.0.0.1:8321``.
    cost:
        Default cost model for calls that accept one; ``None`` defers
        to the *server's* configured default.  Must be wire-spec
        serialisable (``unit``/``length``/``power:E``).
    timeout:
        Per-request socket timeout in seconds.
    etag_cache_size:
        Bound of the client-side revalidation memo (each entry holds
        one diff's full payload; LRU-evicted beyond the bound).
    """

    def __init__(
        self,
        url: str,
        cost: Optional[CostModel] = None,
        timeout: float = 60.0,
        etag_cache_size: int = 1024,
    ):
        self.base_url = url.rstrip("/")
        self.timeout = timeout
        self.default_cost = cost
        if cost is not None:
            cost_to_spec(cost)  # fail fast on unserialisable models
        self._specs: Dict[str, WorkflowSpecification] = {}
        # ETag revalidation memo: url -> (etag, cached outcome
        # payload).  LRU-bounded — a long-lived client sweeping a
        # growing corpus must not retain every payload forever.
        self._etags = LRUCache(etag_cache_size)
        self._lock = threading.RLock()

    # -- transport ------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        """One HTTP round trip; server errors re-raise as ReproErrors.

        Returns ``(status, headers, body_bytes)``.
        """
        url = self.base_url + path
        if query:
            url += "?" + urllib.parse.urlencode(query)
        all_headers = dict(headers or {})
        # Correlation: reuse an already-bound ID (e.g. when a server
        # proxies through a RemoteWorkspace) or mint one per request,
        # so client and server logs join on the same token.
        all_headers.setdefault(
            "X-Request-Id", current_request_id() or new_request_id()
        )
        request = urllib.request.Request(
            url, data=body, method=method, headers=all_headers
        )
        # Idempotent requests retry transient connection failures — a
        # cluster parent restarting a crashed worker refuses or resets
        # connections for a beat; two short backoffs ride it out
        # without masking a genuinely down server for long.  POSTs
        # (imports, stream batches) are never retried: the first
        # attempt may have been applied.
        retries = _RETRY_DELAYS if method in _IDEMPOTENT_METHODS else ()
        last_reason: object = None
        for attempt in range(len(retries) + 1):
            if attempt:
                time.sleep(retries[attempt - 1])
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return (
                        response.status,
                        dict(response.headers),
                        response.read(),
                    )
            except urllib.error.HTTPError as exc:
                if exc.code == 304:
                    # Not an error: the revalidation answer.
                    return 304, dict(exc.headers), b""
                raw = exc.read()
                try:
                    envelope = ErrorEnvelope.from_payload(
                        json.loads(raw.decode("utf8"))
                    )
                except (UnicodeDecodeError, ValueError):
                    envelope = None
                if envelope is not None:
                    raise envelope.to_exception() from None
                raise ReproError(
                    f"server returned HTTP {exc.code} for "
                    f"{method} {path}"
                ) from None
            except urllib.error.URLError as exc:
                last_reason = exc.reason
        raise TransportError(
            f"cannot reach diff server at {self.base_url}: "
            f"{last_reason}"
        ) from None

    def _json(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        payload=None,
        headers: Optional[Dict[str, str]] = None,
    ):
        """A JSON round trip: optional JSON body in, JSON body out."""
        body = None
        all_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload).encode("utf8")
            all_headers.setdefault("Content-Type", JSON_TYPE)
        status, _, raw = self._request(
            method, path, query=query, body=body, headers=all_headers
        )
        if not raw:
            return status, None
        try:
            return status, json.loads(raw.decode("utf8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ReproError(
                f"malformed JSON from server for {method} {path}: {exc}"
            ) from None

    def _cost_query(
        self, cost: Optional[CostModel]
    ) -> Optional[str]:
        """The wire spec of ``cost`` (or the client default), if any."""
        cost = cost if cost is not None else self.default_cost
        return None if cost is None else cost_to_spec(cost)

    # -- health and stats -----------------------------------------------
    def healthz(self) -> dict:
        """The server's liveness payload (status, version, spec count)."""
        _, payload = self._json("GET", "/healthz")
        return payload

    @property
    def stats(self) -> Dict[str, int]:
        """Service counters of the remote corpus (one ``GET /stats``)."""
        return self.stats_snapshot().counters

    def stats_snapshot(self) -> StatsSnapshot:
        """The remote counters as a typed :class:`StatsSnapshot`."""
        _, payload = self._json("GET", "/stats")
        snapshot = StatsSnapshot.from_dict(payload)
        snapshot.source = self.base_url
        return snapshot

    # -- specification management ---------------------------------------
    def specifications(self) -> List[str]:
        """Names of every specification the server knows."""
        _, payload = self._json("GET", "/specs")
        return list(payload["specs"])

    def specification(self, name: str) -> WorkflowSpecification:
        """The named specification, fetched as XML (session-memoised)."""
        with self._lock:
            if name not in self._specs:
                _, _, raw = self._request(
                    "GET",
                    f"/specs/{_quote(name)}",
                    headers={"Accept": XML_TYPE},
                )
                self._specs[name] = specification_from_xml(
                    raw.decode("utf8")
                )
            return self._specs[name]

    def register(self, spec: WorkflowSpecification) -> None:
        """Upload a specification (``PUT /specs/{name}`` as XML)."""
        self._request(
            "PUT",
            f"/specs/{_quote(spec.name)}",
            body=specification_to_xml(spec).encode("utf8"),
            headers={"Content-Type": XML_TYPE},
        )
        with self._lock:
            self._specs[spec.name] = spec

    # -- run management ---------------------------------------------------
    def runs(self, spec: Optional[str] = None) -> List[str]:
        """Names of the stored runs of a specification."""
        query = {} if spec is None else {"spec": spec}
        _, payload = self._json("GET", "/runs", query=query)
        return list(payload["runs"])

    def run(
        self, name: str, spec: Optional[str] = None
    ) -> WorkflowRun:
        """A stored run, downloaded as PROV-JSON and reconstructed.

        The interchange layer's embedded plan makes the reconstruction
        exact, so the returned object fingerprints identically to the
        server's copy.
        """
        from repro.interchange.convert import import_document

        query = {} if spec is None else {"spec": spec}
        _, _, raw = self._request(
            "GET",
            f"/runs/{_quote(name)}",
            query=query,
            headers={"Accept": PROV_JSON_TYPE},
        )
        return import_document(
            raw.decode("utf8"), run_name=name
        ).run

    def import_run(self, run: WorkflowRun) -> None:
        """Upload a run (``PUT /runs/{name}`` as PROV-JSON)."""
        from repro.interchange.convert import export_run_json

        self._request(
            "PUT",
            f"/runs/{_quote(run.name)}",
            body=export_run_json(run).encode("utf8"),
            headers={"Content-Type": PROV_JSON_TYPE},
        )

    def generate_run(
        self,
        name: str,
        spec: Optional[str] = None,
        params: Optional[ExecutionParams] = None,
        seed: Optional[int] = None,
    ) -> WorkflowRun:
        """Generate a run client-side and upload it.

        The specification is fetched once (memoised), the run is
        produced by the same deterministic
        :func:`~repro.workflow.execution.execute_workflow` a local
        workspace uses, and the result is pushed with
        :meth:`import_run` — same seed, same run, wherever generated.
        """
        spec_name = self._resolve_spec(spec)
        run = execute_workflow(
            self.specification(spec_name), params, seed=seed, name=name
        )
        self.import_run(run)
        return run

    def _resolve_spec(self, spec: Optional[str]) -> str:
        """Client-side default-spec resolution (mirrors the local rule)."""
        if spec is not None:
            return spec
        names = self.specifications()
        if len(names) == 1:
            return names[0]
        if not names:
            raise ReproError(
                "workspace holds no specifications; register one first"
            )
        raise ReproError(
            "workspace holds several specifications "
            f"({', '.join(names)}); pass spec= to disambiguate"
        )

    # -- differencing -----------------------------------------------------
    def diff(
        self,
        a,
        b,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> DiffOutcome:
        """The priced ``a``→``b`` edit script (``GET /diff/{a}/{b}``).

        Two in-memory :class:`WorkflowRun` objects are diffed locally
        (nothing uploaded), exactly as the local workspace does; name
        pairs go to the server, with ETag revalidation reusing the
        previously fetched outcome when nothing changed.
        """
        if isinstance(a, WorkflowRun) or isinstance(b, WorkflowRun):
            if not (
                isinstance(a, WorkflowRun)
                and isinstance(b, WorkflowRun)
            ):
                raise ReproError(
                    "diff arguments must be two run names or two "
                    "WorkflowRun objects, not a mix"
                )
            used = cost if cost is not None else self.default_cost
            if used is None:
                from repro.costs.standard import UnitCost

                used = UnitCost()
            result = diff_runs(a, b, cost=used, with_script=True)
            return DiffOutcome(
                spec_name=a.spec.name,
                run_a=a.name,
                run_b=b.name,
                cost_model=used.name,
                distance=result.distance,
                operations=list(result.script.operations),
                cost_key=cost_model_key(used),
            )
        query: Dict[str, str] = {}
        if spec is not None:
            query["spec"] = spec
        cost_spec = self._cost_query(cost)
        if cost_spec is not None:
            query["cost"] = cost_spec
        path = f"/diff/{_quote(a)}/{_quote(b)}"
        cache_key = path + "?" + urllib.parse.urlencode(query)
        with self._lock:
            cached = self._etags.get(cache_key)
        headers = (
            {"If-None-Match": cached[0]} if cached is not None else {}
        )
        status, response_headers, raw = self._request(
            "GET", path, query=query, headers=headers
        )
        if status == 304 and cached is not None:
            return DiffOutcome.from_dict(cached[1])
        payload = json.loads(raw.decode("utf8"))
        etag = response_headers.get("ETag")
        if etag:
            with self._lock:
                self._etags.put(cache_key, (etag, payload))
        return DiffOutcome.from_dict(payload)

    def diff_many(
        self,
        pairs: Iterable[Tuple[str, str]],
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> Iterator[DiffOutcome]:
        """Stream outcomes for directed name pairs (one request each).

        The server's persistent script cache makes repeats cheap; the
        client-side ETag memo makes them free of payload transfer.
        """
        for a, b in pairs:
            yield self.diff(a, b, spec=spec, cost=cost)

    def matrix(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> MatrixResult:
        """All-pairs distances (``POST /matrix``) as a
        :class:`MatrixResult`."""
        payload: Dict[str, object] = {}
        if spec is not None:
            payload["spec"] = spec
        cost_spec = self._cost_query(cost)
        if cost_spec is not None:
            payload["cost"] = cost_spec
        if runs is not None:
            payload["runs"] = list(runs)
        _, body = self._json("POST", "/matrix", payload=payload)
        return MatrixResult.from_dict(body)

    # -- analytics (derived from one matrix fetch) -----------------------
    def nearest(
        self,
        run_name: str,
        k: Optional[int] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> List[Tuple[str, float]]:
        """``run_name``'s neighbours by ascending distance.

        Derived client-side from one :meth:`matrix` call through the
        same :mod:`repro.corpus.analytics` fold the server would use —
        identical numbers, one round trip.
        """
        result = self.matrix(spec=spec, cost=cost)
        if run_name not in result.runs:
            from repro.errors import NotFoundError

            raise NotFoundError(
                f"no stored run {run_name!r} for specification "
                f"{result.spec_name!r}"
            )
        return k_nearest(
            result.distances, run_name, k=k, names=result.runs
        )

    def medoid(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> Tuple[str, float]:
        """The corpus's most central run, ``(name, mean distance)``."""
        result = self.matrix(spec=spec, cost=cost)
        return _medoid(result.distances, names=result.runs)

    def outliers(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        top: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Runs ranked by descending mean distance to the corpus."""
        result = self.matrix(spec=spec, cost=cost)
        return _outliers(result.distances, names=result.runs, top=top)

    # -- querying ----------------------------------------------------------
    def query_page(
        self,
        filter: Optional[QueryFilter] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> QueryPage:
        """One page of matching diffs (``POST /query``)."""
        filter = filter if filter is not None else QueryFilter()
        payload: Dict[str, object] = {"filter": filter.to_dict()}
        if spec is not None:
            payload["spec"] = spec
        cost_spec = self._cost_query(cost)
        if cost_spec is not None:
            payload["cost"] = cost_spec
        if cursor is not None:
            payload["cursor"] = cursor
        if limit is not None:
            payload["limit"] = limit
        if runs is not None:
            payload["runs"] = list(runs)
        _, body = self._json("POST", "/query", payload=payload)
        return QueryPage.from_dict(body)

    def query(
        self,
        filter: Optional[QueryFilter] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
        page_size: int = 200,
    ) -> List[DiffOutcome]:
        """Every matching diff, paged transparently.

        Accepts only the declarative :class:`QueryFilter` (live ``Q``
        predicates are arbitrary Python and do not travel); the
        returned :class:`DiffOutcome` items are duck-compatible with
        the local engine's docs for the aggregation helpers
        (``op_kind_histogram``, ``module_churn``).
        """
        if filter is not None and not isinstance(filter, QueryFilter):
            raise ReproError(
                "remote queries take a QueryFilter (a live Q predicate "
                "is arbitrary Python and cannot travel over the wire)"
            )
        items: List[DiffOutcome] = []
        cursor: Optional[str] = None
        while True:
            page = self.query_page(
                filter=filter,
                spec=spec,
                cost=cost,
                cursor=cursor,
                limit=page_size,
                runs=runs,
            )
            items.extend(page.items)
            if page.next_cursor is None:
                return items
            cursor = page.next_cursor

    # -- interchange -------------------------------------------------------
    def export_prov(
        self, run_name: str, spec: Optional[str] = None
    ) -> str:
        """A stored run as deterministic PROV-JSON text."""
        query = {} if spec is None else {"spec": spec}
        _, _, raw = self._request(
            "GET",
            f"/runs/{_quote(run_name)}",
            query=query,
            headers={"Accept": PROV_JSON_TYPE},
        )
        return raw.decode("utf8")

    def import_prov(
        self,
        source,
        name: str = "",
        spec_name: Optional[str] = None,
        diff: bool = False,
        cost: Optional[CostModel] = None,
    ):
        """Ingest a PROV-JSON/OPM document (``POST /prov/import``).

        ``source`` is a dict, JSON text, or a path to a document file.
        Returns an :class:`~repro.api_types.ImportSummary` (names,
        sizes, normalisation report); with ``diff=True`` the summary's
        ``new_pairs`` carries the newcomer's corpus distances — the
        remote counterpart of the local two-tuple return.
        """
        from repro.api_types import ImportSummary

        text = self._document_text(source)
        query: Dict[str, str] = {"diff": "1" if diff else "0"}
        if name:
            query["name"] = name
        if spec_name is not None:
            query["spec_name"] = spec_name
        cost_spec = self._cost_query(cost)
        if cost_spec is not None:
            query["cost"] = cost_spec
        status, _, raw = self._request(
            "POST",
            "/prov/import",
            query=query,
            body=text.encode("utf8"),
            headers={"Content-Type": PROV_JSON_TYPE},
        )
        return ImportSummary.from_dict(
            json.loads(raw.decode("utf8"))
        )

    # -- streaming ingestion ----------------------------------------------
    def stream(
        self,
        spec: str,
        run: str,
        session: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "auto",
        batch_size: int = 64,
        max_retries: int = 3,
    ):
        """Open a :class:`~repro.stream.client.StreamSession` over HTTP.

        Event batches go out as NDJSON on ``POST /stream/events``; the
        session retries transport failures and resumes from the last
        acknowledged sequence number (replayed frames are acknowledged
        idempotently server-side), so a flaky network costs retries,
        never duplicate ingestion.
        """
        from repro.stream.client import StreamSession
        from repro.stream.events import StreamAck

        def send(data: bytes) -> StreamAck:
            _, _, raw = self._request(
                "POST",
                "/stream/events",
                body=data,
                headers={"Content-Type": "application/x-ndjson"},
            )
            return StreamAck.from_dict(
                json.loads(raw.decode("utf8"))
            )

        return StreamSession(
            send=send,
            spec_name=spec,
            run_name=run,
            session_id=session,
            threshold=threshold,
            mode=mode,
            batch_size=batch_size,
            max_retries=max_retries,
        )

    def stream_live(self):
        """Live analytics of the server's open streaming sessions
        (``GET /stream/live``)."""
        from repro.stream.events import LiveStatus

        _, payload = self._json("GET", "/stream/live")
        return [
            LiveStatus.from_dict(entry)
            for entry in payload.get("sessions", [])
        ]

    @staticmethod
    def _document_text(source) -> str:
        """Normalise an import source (dict / text / path) to JSON text."""
        if isinstance(source, dict):
            return json.dumps(source)
        text = str(source)
        stripped = text.lstrip()
        if stripped.startswith("{"):
            return text
        # Anything that does not look like JSON is treated as a path —
        # the same heuristic the interchange importer applies locally.
        from pathlib import Path

        path = Path(text)
        if not path.exists():
            raise ReproError(
                f"PROV document {text!r} does not exist"
            )
        return path.read_text(encoding="utf8")

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RemoteWorkspace({self.base_url!r})"
