"""ASCII rendering for PDiffView (Section VII).

The paper's prototype is a Swing GUI; this text-mode equivalent renders
run graphs as topologically-levelled ASCII diagrams, run statistics
panels, and per-operation views of an edit script — enough to "step
through the set of edit operations" and "see an overview" in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.api import DiffResult
from repro.core.edit_script import (
    PATH_CONTRACTION,
    PATH_DELETION,
    PATH_EXPANSION,
    PATH_INSERTION,
    PathOperation,
)
from repro.graphs.flow_network import FlowNetwork

_OP_GLYPHS = {
    PATH_INSERTION: "+",
    PATH_DELETION: "-",
    PATH_EXPANSION: "++",
    PATH_CONTRACTION: "--",
}


def render_graph(graph: FlowNetwork, show_labels: bool = True) -> str:
    """Topologically-levelled ASCII rendering of a flow network.

    Collapsed composite-module graphs may contain cycles (a composite can
    group modules from both ends of the workflow); in that case levels
    fall back to breadth-first distance from the entry nodes.
    """
    level: Dict[object, int] = {}
    try:
        order = graph.topological_order()
        for node in order:
            preds = graph.predecessors(node)
            level[node] = 1 + max((level[p] for p in preds), default=-1)
    except Exception:
        roots = graph.source_candidates() or list(graph.nodes())[:1]
        frontier = list(roots)
        depth = 0
        while frontier:
            next_frontier = []
            for node in frontier:
                if node in level:
                    continue
                level[node] = depth
                next_frontier.extend(graph.successors(node))
            frontier = next_frontier
            depth += 1
        for node in graph.nodes():
            level.setdefault(node, depth)
    by_level: Dict[int, List[object]] = {}
    for node, depth in level.items():
        by_level.setdefault(depth, []).append(node)

    lines = [f"graph {graph.name or '(unnamed)'}: "
             f"{graph.num_nodes} nodes, {graph.num_edges} edges"]
    for depth in sorted(by_level):
        entries = []
        for node in by_level[depth]:
            if show_labels and graph.label(node) != str(node):
                entries.append(f"{node}[{graph.label(node)}]")
            else:
                entries.append(str(node))
        lines.append(f"  level {depth}: " + "  ".join(entries))
    lines.append("  edges:")
    for u, v, key in graph.edges():
        suffix = f" #{key}" if key else ""
        lines.append(f"    {u} -> {v}{suffix}")
    return "\n".join(lines)


def render_statistics(stats: Dict[str, int], title: str = "run") -> str:
    """The statistics panel shown above each run pane (Fig. 10)."""
    lines = [f"[{title}]"]
    for key in (
        "nodes",
        "edges",
        "fork_copies",
        "loop_iterations",
        "p_nodes",
        "f_nodes",
        "l_nodes",
    ):
        if key in stats:
            lines.append(f"  {key:16s} {stats[key]}")
    return "\n".join(lines)


def render_operation(index: int, op: PathOperation) -> str:
    """One line per edit operation, with +/- glyphs like the GUI's colors."""
    glyph = _OP_GLYPHS.get(op.kind, "?")
    path = " -> ".join(op.path_labels)
    note = f"  ({op.note})" if op.note else ""
    return (
        f"  [{index:3d}] {glyph:2s} {op.kind:17s} {path}"
        f"  cost={op.cost:g}{note}"
    )


def render_script(diff: DiffResult, max_operations: Optional[int] = None) -> str:
    """An overview of the whole edit script."""
    if diff.script is None:
        return "(no script was generated)"
    ops = diff.script.operations
    shown = ops if max_operations is None else ops[:max_operations]
    lines = [diff.summary()]
    for index, op in enumerate(shown, start=1):
        lines.append(render_operation(index, op))
    if len(shown) < len(ops):
        lines.append(f"  ... {len(ops) - len(shown)} more operations")
    return "\n".join(lines)


def render_side_by_side(
    left: Sequence[str], right: Sequence[str], gutter: str = " | "
) -> str:
    """Two text blocks side by side (source/target panes of Fig. 10)."""
    width = max((len(line) for line in left), default=0)
    height = max(len(left), len(right))
    lines = []
    for i in range(height):
        l = left[i] if i < len(left) else ""
        r = right[i] if i < len(right) else ""
        lines.append(f"{l:<{width}}{gutter}{r}")
    return "\n".join(lines)
