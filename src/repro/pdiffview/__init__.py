"""repro.pdiffview subpackage."""
