"""PDiffView sessions: the prototype's facade (Section VII).

.. deprecated:: 1.1
   :class:`repro.Workspace` supersedes this facade — one client API
   over storage, differencing, querying, interchange and viewing, on
   pluggable execution backends (``docs/MIGRATION.md`` maps every
   method).  The class remains fully functional; :class:`DiffView`
   stays the canonical interactive view type and is what
   :meth:`repro.Workspace.view` returns.

A :class:`PDiffViewSession` ties the pieces of the prototype together:

* a :class:`~repro.io.store.WorkflowStore` for persistence,
* run generation via the execution function,
* differencing with any cost model, and
* stepping through the resulting edit script with rendered panes.

Example
-------
>>> session = PDiffViewSession(tmp_path)             # doctest: +SKIP
>>> session.register_specification(protein_annotation())
>>> session.generate_run("PA", name="monday", seed=1)
>>> view = session.diff("PA", "monday", "tuesday")
>>> print(view.overview())
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.api import DiffResult, diff_runs
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError
from repro.io.store import WorkflowStore
from repro.pdiffview.render import (
    render_graph,
    render_operation,
    render_script,
    render_statistics,
)
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


class DiffView:
    """An interactive view over a computed diff (step through the ops)."""

    def __init__(self, diff: DiffResult):
        self.diff = diff
        self._cursor = 0

    # -- overview --------------------------------------------------------
    def overview(self, max_operations: Optional[int] = 20) -> str:
        """The script overview pane."""
        return render_script(self.diff, max_operations=max_operations)

    def compact_overview(self) -> str:
        """Composite-operation digest (path replacements, subgraph
        growth) — the "overview" mode of Section VII."""
        compact = self.diff.compact_script()
        lines = [self.diff.summary()]
        lines.extend(f"  {line}" for line in compact.summary_lines())
        return "\n".join(lines)

    def panes(self) -> str:
        """Source and target run statistics side by side (Fig. 10)."""
        left = render_statistics(
            self.diff.run1.statistics(), title=self.diff.run1.name
        )
        right = render_statistics(
            self.diff.run2.statistics(), title=self.diff.run2.name
        )
        from repro.pdiffview.render import render_side_by_side

        return render_side_by_side(left.splitlines(), right.splitlines())

    # -- stepping --------------------------------------------------------
    @property
    def position(self) -> int:
        return self._cursor

    def __len__(self) -> int:
        return len(self.diff.script) if self.diff.script else 0

    def current(self) -> Optional[str]:
        """Render the operation at the cursor (None when exhausted)."""
        script = self.diff.script
        if script is None or self._cursor >= len(script.operations):
            return None
        return render_operation(
            self._cursor + 1, script.operations[self._cursor]
        )

    def step_forward(self) -> Optional[str]:
        """Advance one operation; returns its rendering."""
        rendered = self.current()
        if rendered is not None:
            self._cursor += 1
        return rendered

    def step_back(self) -> Optional[str]:
        """Move the cursor back one operation."""
        if self._cursor == 0:
            return None
        self._cursor -= 1
        return self.current()

    def state_after_cursor(self):
        """Graph snapshot after the operation the cursor just passed."""
        script = self.diff.script
        if script is None or script.intermediate_graphs is None:
            raise ReproError(
                "snapshots require diff(..., record_intermediates=True)"
            )
        if self._cursor == 0:
            return script.initial_graph
        return script.intermediate_graphs[self._cursor - 1]


class PDiffViewSession:
    """The prototype facade: store, generate, import/export, diff, view."""

    def __init__(self, root):
        self.store = WorkflowStore(root)
        self._specs: Dict[str, WorkflowSpecification] = {}
        self._service = None
        self._query_engine = None

    @property
    def diff_service(self):
        """The corpus :class:`~repro.corpus.service.DiffService` sharing
        this session's store (created lazily; fingerprints and distances
        persist under ``<root>/index/``)."""
        if self._service is None:
            from repro.corpus.service import DiffService

            self._service = DiffService(self.store)
        return self._service

    @property
    def query_engine(self):
        """The :class:`~repro.query.engine.QueryEngine` over this
        session's corpus service (created lazily; scripts and the
        inverted index persist under ``<root>/index/query/``)."""
        if self._query_engine is None:
            from repro.query.engine import QueryEngine

            self._query_engine = QueryEngine(self.diff_service)
        return self._query_engine

    # -- specifications -------------------------------------------------
    def register_specification(self, spec: WorkflowSpecification) -> None:
        """Add a specification to the session and persist it."""
        self._specs[spec.name] = spec
        self.store.save_specification(spec)
        if self._service is not None:
            # Run fingerprints embed the spec digest; re-registering a
            # name invalidates everything minted under the old content.
            self._service.invalidate_specification(spec.name)

    def specification(self, name: str) -> WorkflowSpecification:
        if name not in self._specs:
            self._specs[name] = self.store.load_specification(name)
        return self._specs[name]

    def specifications(self) -> List[str]:
        return sorted(
            set(self._specs) | set(self.store.list_specifications())
        )

    # -- runs --------------------------------------------------------------
    def import_run(self, run: WorkflowRun) -> None:
        """Validate (implicitly, via WorkflowRun) and persist a run."""
        self.store.save_run(run)

    # -- external provenance ------------------------------------------------
    def import_prov(
        self,
        source,
        name: str = "",
        spec_name: Optional[str] = None,
    ):
        """Import a PROV-JSON/OPM document into the session's store.

        Registers the (embedded or derived) specification and persists
        the run, so the imported execution is immediately diffable and
        queryable.  Importing under a name that already denotes a
        *different* specification is refused (the store's guard) —
        runs stored under the old content would become unreadable.
        Returns the :class:`~repro.interchange.convert.ImportResult`,
        whose ``report`` details any SP-ization the document needed.
        """
        result = self.store.ingest_prov(
            source, run_name=name, spec_name=spec_name
        )
        # The guard above ensures any pre-existing spec of this name
        # has identical content (equal fingerprints), so session and
        # service memos stay valid; keep the first object for identity.
        self._specs.setdefault(result.spec.name, result.spec)
        return result

    def export_prov(self, spec_name: str, run_name: str) -> str:
        """A stored run as deterministic PROV-JSON text.

        The document embeds the specification as a ``prov:Plan``
        entity, so :meth:`import_prov` (here or in another store)
        reconstructs the run exactly.
        """
        from repro.interchange.convert import export_run_json

        return export_run_json(self.run(spec_name, run_name))

    def generate_run(
        self,
        spec_name: str,
        name: str,
        params: Optional[ExecutionParams] = None,
        seed: Optional[int] = None,
    ) -> WorkflowRun:
        """Generate, persist and return a random run."""
        spec = self.specification(spec_name)
        run = execute_workflow(spec, params, seed=seed, name=name)
        self.store.save_run(run)
        return run

    def run(self, spec_name: str, run_name: str) -> WorkflowRun:
        return self.store.load_run(self.specification(spec_name), run_name)

    def runs(self, spec_name: str) -> List[str]:
        return self.store.list_runs(spec_name)

    # -- differencing -----------------------------------------------------
    def diff(
        self,
        spec_name: str,
        run1_name: str,
        run2_name: str,
        cost: Optional[CostModel] = None,
        record_intermediates: bool = True,
    ) -> DiffView:
        """Diff two stored runs and wrap the result for viewing."""
        run1 = self.run(spec_name, run1_name)
        run2 = self.run(spec_name, run2_name)
        result = diff_runs(
            run1,
            run2,
            cost=cost or UnitCost(),
            record_intermediates=record_intermediates,
        )
        return DiffView(result)

    def distance_matrix(
        self, spec_name: str, cost: Optional[CostModel] = None
    ) -> Dict[tuple, float]:
        """Pairwise edit distances between all stored runs of a spec.

        Returns ``{(run_a, run_b): distance}`` for unordered pairs — the
        "which executions cluster together" overview scientists asked for
        in the paper's conclusions.  Delegates to the corpus
        :class:`~repro.corpus.service.DiffService`, so repeated calls hit
        the fingerprint-keyed distance cache instead of recomputing the
        O(N²) matrix of O(|E|³) diffs.
        """
        return self.diff_service.distance_matrix(spec_name, cost=cost)

    def nearest_runs(
        self,
        spec_name: str,
        run_name: str,
        k: Optional[int] = None,
        cost: Optional[CostModel] = None,
    ) -> List[tuple]:
        """``run_name``'s nearest stored runs, ``[(name, distance), ...]``."""
        return self.diff_service.nearest_runs(
            spec_name, run_name, k=k, cost=cost
        )

    # -- querying ----------------------------------------------------------
    def query(
        self,
        spec_name: str,
        predicate=None,
        cost: Optional[CostModel] = None,
        runs: Optional[List[str]] = None,
    ) -> list:
        """The diffs of stored run pairs matching a ``Q`` predicate.

        Materialised for convenience (``[ScriptDoc, ...]`` in listing
        order); use :attr:`query_engine` directly for streaming
        evaluation or aggregations::

            from repro.query import Q
            docs = session.query(
                "PA", Q.op_kind("path-deletion") & Q.touches("getGOAnnot")
            )
        """
        return list(
            self.query_engine.select(
                spec_name, predicate, cost=cost, runs=runs
            )
        )

    # -- rendering ---------------------------------------------------------
    def show_specification(self, spec_name: str) -> str:
        return render_graph(self.specification(spec_name).graph)

    def show_run(self, spec_name: str, run_name: str) -> str:
        return render_graph(self.run(spec_name, run_name).graph)
