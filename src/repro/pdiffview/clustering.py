"""Hierarchical module clustering and zoomable diff views (Section VII).

PDiffView lets users "successively cluster modules in the specification
to form a hierarchy of composite modules", then view a diff "at any level
in the defined hierarchy" — zooming into composite modules with a large
amount of change and ignoring unchanged ones.

:class:`ModuleHierarchy` models the cluster tree over specification
labels; :func:`clustered_diff_profile` projects an edit script onto a
hierarchy level, counting touched edges per composite module so the user
can rank composites by change volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.api import DiffResult
from repro.errors import ReproError
from repro.graphs.flow_network import FlowNetwork


@dataclass
class Cluster:
    """A composite module: a named group of labels and/or sub-clusters."""

    name: str
    labels: List[str] = field(default_factory=list)
    children: List["Cluster"] = field(default_factory=list)

    def all_labels(self) -> List[str]:
        result = list(self.labels)
        for child in self.children:
            result.extend(child.all_labels())
        return result


class ModuleHierarchy:
    """A cluster tree over the labels of one specification.

    Level 0 is the root (everything in one composite); deeper levels
    refine composites.  Labels not claimed by any cluster form implicit
    singleton composites at every level.
    """

    def __init__(self, spec, root_clusters: Sequence[Cluster]):
        self.spec = spec
        self.root = Cluster(name=spec.name, children=list(root_clusters))
        claimed: Dict[str, str] = {}
        for cluster in root_clusters:
            for label in cluster.all_labels():
                if label in claimed:
                    raise ReproError(
                        f"label {label!r} appears in clusters "
                        f"{claimed[label]!r} and {cluster.name!r}"
                    )
                if label not in spec.label_to_node:
                    raise ReproError(
                        f"cluster {cluster.name!r} references unknown "
                        f"label {label!r}"
                    )
                claimed[label] = cluster.name
        self._claimed = claimed

    def depth(self) -> int:
        def walk(cluster: Cluster) -> int:
            if not cluster.children:
                return 1
            return 1 + max(walk(child) for child in cluster.children)

        return walk(self.root)

    def composites_at_level(self, level: int) -> List[Cluster]:
        """The composite modules visible at ``level`` (0 = root)."""
        frontier = [self.root]
        for _ in range(level):
            next_frontier: List[Cluster] = []
            for cluster in frontier:
                if cluster.children:
                    next_frontier.extend(cluster.children)
                else:
                    next_frontier.append(cluster)
            frontier = next_frontier
        return frontier

    def composite_of(self, label: str, level: int) -> str:
        """Name of the composite containing ``label`` at ``level``."""
        for cluster in self.composites_at_level(level):
            if label in cluster.all_labels():
                return cluster.name
        return label  # implicit singleton


def collapse_run_graph(
    graph: FlowNetwork, hierarchy: ModuleHierarchy, level: int
) -> FlowNetwork:
    """Project a run graph to composite modules (the zoomed-out view).

    Instances of labels in the same composite merge into one node per
    composite per *weakly connected region* — for display we use the
    simpler per-composite merge; parallel edges between composites are
    collapsed with multiplicity preserved via edge keys.
    """
    collapsed = FlowNetwork(name=f"{graph.name}@level{level}")
    mapping: Dict[object, str] = {}
    for node in graph.nodes():
        composite = hierarchy.composite_of(graph.label(node), level)
        mapping[node] = composite
        if composite not in collapsed:
            collapsed.add_node(composite)
    for u, v, _ in graph.edges():
        cu, cv = mapping[u], mapping[v]
        if cu != cv:
            collapsed.add_edge(cu, cv)
    return collapsed


@dataclass
class CompositeChange:
    """Change volume attributed to one composite module."""

    composite: str
    operations: int
    cost: float
    inserted_edges: int
    deleted_edges: int

    @property
    def touched_edges(self) -> int:
        return self.inserted_edges + self.deleted_edges


def clustered_diff_profile(
    diff: DiffResult, hierarchy: ModuleHierarchy, level: int
) -> List[CompositeChange]:
    """Rank composite modules by the amount of change at a zoom level.

    Each edit operation's path edges are attributed to the composite of
    their source label; the result is sorted by descending cost so the
    most-changed composites surface first (the paper's "zoom in on
    composite modules that indicate a large amount of change").
    """
    if diff.script is None:
        raise ReproError("clustered profiles require a generated script")
    profile: Dict[str, CompositeChange] = {}

    def bucket(name: str) -> CompositeChange:
        if name not in profile:
            profile[name] = CompositeChange(name, 0, 0.0, 0, 0)
        return profile[name]

    for op in diff.script.operations:
        inserting = op.kind in ("path-insertion", "path-expansion")
        touched: Dict[str, int] = {}
        for source_label in op.path_labels[:-1]:
            composite = hierarchy.composite_of(source_label, level)
            touched[composite] = touched.get(composite, 0) + 1
        share = op.cost / max(1, len(op.path_labels) - 1)
        for composite, count in touched.items():
            entry = bucket(composite)
            entry.operations += 1
            entry.cost += share * count
            if inserting:
                entry.inserted_edges += count
            else:
                entry.deleted_edges += count
    return sorted(
        profile.values(), key=lambda change: (-change.cost, change.composite)
    )
