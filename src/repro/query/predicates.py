"""Composable predicates over edit scripts (the ``Q`` combinator API).

A predicate answers "does this diff's edit script interest me?" and is
evaluated against :class:`~repro.query.engine.ScriptDoc` objects.  The
motivating questions from the paper — *which runs dropped the annotation
module?  which pairs diverge by more than a little?* — compose from
small primitives::

    Q.op_kind(PATH_DELETION) & Q.touches("getGOAnnot") & Q.cost(min=2.0)

Every predicate implements two faces:

* :meth:`Predicate.matches` — the exact check against a loaded script;
* :meth:`Predicate.candidates` — a *conservative* candidate set drawn
  from the inverted :class:`~repro.corpus.script_index.ScriptIndex`
  (``None`` means "cannot prune, consider everything").  Conjunctions
  intersect their children's candidate sets, disjunctions union them,
  and negations decline to prune — so index pruning can skip work but
  never change an answer; the engine always re-runs :meth:`matches` on
  the survivors.

Predicates are immutable and freely shareable between queries.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.core.edit_script import OPERATION_KINDS
from repro.errors import ReproError


class Predicate:
    """Base class: combinator plumbing shared by every predicate."""

    def matches(self, doc) -> bool:
        raise NotImplementedError

    def candidates(self, index) -> Optional[Set[str]]:
        """Index-derived superset of matching script keys (None = all)."""
        return None

    def cost_ceiling(self) -> Optional[float]:
        """A distance above which this predicate *cannot* match.

        ``None`` means no ceiling.  A non-``None`` ceiling ``c`` is a
        promise: every doc with ``distance > c`` fails :meth:`matches`.
        The query engine pairs ceilings with the never-overestimating
        lower bounds of :mod:`repro.core.bounds` to rule out pairs
        before pricing them — a pair whose bound exceeds the ceiling
        has true distance above it too, so skipping is exact, not
        approximate.
        """
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()


class MatchAll(Predicate):
    """Matches every diff (the implicit predicate of a bare query)."""

    def matches(self, doc) -> bool:
        return True

    def describe(self) -> str:
        return "*"


class And(Predicate):
    """Conjunction; candidate sets intersect (any child may prune)."""

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def matches(self, doc) -> bool:
        return all(part.matches(doc) for part in self.parts)

    def candidates(self, index) -> Optional[Set[str]]:
        known = [
            c for c in (p.candidates(index) for p in self.parts)
            if c is not None
        ]
        if not known:
            return None
        result = set(known[0])
        for candidate in known[1:]:
            result &= candidate
        return result

    def cost_ceiling(self) -> Optional[float]:
        """Tightest child ceiling: all parts must match, so exceeding
        any one part's ceiling already rules the doc out."""
        ceilings = [
            c for c in (p.cost_ceiling() for p in self.parts)
            if c is not None
        ]
        return min(ceilings) if ceilings else None

    def describe(self) -> str:
        return "(" + " & ".join(p.describe() for p in self.parts) + ")"


class Or(Predicate):
    """Disjunction; prunes only when *every* child can."""

    def __init__(self, *parts: Predicate):
        self.parts = tuple(parts)

    def matches(self, doc) -> bool:
        return any(part.matches(doc) for part in self.parts)

    def candidates(self, index) -> Optional[Set[str]]:
        result: Set[str] = set()
        for part in self.parts:
            candidate = part.candidates(index)
            if candidate is None:
                return None
            result |= candidate
        return result

    def cost_ceiling(self) -> Optional[float]:
        """Loosest child ceiling — and only when *every* part has one
        (an uncapped part could match at any distance)."""
        ceilings = []
        for part in self.parts:
            ceiling = part.cost_ceiling()
            if ceiling is None:
                return None
            ceilings.append(ceiling)
        return max(ceilings) if ceilings else None

    def describe(self) -> str:
        return "(" + " | ".join(p.describe() for p in self.parts) + ")"


class Not(Predicate):
    """Negation; never prunes (the complement of a superset is useless)."""

    def __init__(self, part: Predicate):
        self.part = part

    def matches(self, doc) -> bool:
        return not self.part.matches(doc)

    def describe(self) -> str:
        return f"~{self.part.describe()}"


class OpKind(Predicate):
    """At least one operation of one of the given kinds."""

    def __init__(self, kinds: Iterable[str]):
        kind_set = frozenset(kinds)
        if not kind_set:
            raise ReproError("op_kind requires at least one kind")
        unknown = kind_set - frozenset(OPERATION_KINDS)
        if unknown:
            raise ReproError(
                f"unknown operation kind(s) {sorted(unknown)}; "
                f"expected a subset of {list(OPERATION_KINDS)}"
            )
        self.kinds: FrozenSet[str] = kind_set

    def matches(self, doc) -> bool:
        return any(op.kind in self.kinds for op in doc.operations)

    def candidates(self, index) -> Optional[Set[str]]:
        return index.candidates_for_kinds(self.kinds)

    def describe(self) -> str:
        return f"op_kind({', '.join(sorted(self.kinds))})"


class Touches(Predicate):
    """At least one operation whose path touches one of the labels.

    Terminals count as touched: an inserted path ``A → X → B`` touches
    ``A``, ``X`` and ``B`` (use churn aggregations for the stricter
    interior-only attribution).
    """

    def __init__(self, labels: Iterable[str]):
        label_set = frozenset(labels)
        if not label_set:
            raise ReproError("touches requires at least one label")
        self.labels: FrozenSet[str] = label_set

    def matches(self, doc) -> bool:
        return any(
            label in op.path_labels
            for op in doc.operations
            for label in self.labels
        )

    def candidates(self, index) -> Optional[Set[str]]:
        return index.candidates_for_labels(self.labels)

    def describe(self) -> str:
        return f"touches({', '.join(sorted(self.labels))})"


class Cost(Predicate):
    """Total script cost (= distance) within ``[minimum, maximum]``."""

    def __init__(
        self,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ):
        if minimum is None and maximum is None:
            raise ReproError("cost requires min and/or max")
        if (
            minimum is not None
            and maximum is not None
            and minimum > maximum
        ):
            raise ReproError(
                f"cost range is empty: min {minimum} > max {maximum}"
            )
        self.minimum = minimum
        self.maximum = maximum

    def matches(self, doc) -> bool:
        if self.minimum is not None and doc.distance < self.minimum:
            return False
        if self.maximum is not None and doc.distance > self.maximum:
            return False
        return True

    def candidates(self, index) -> Optional[Set[str]]:
        return index.candidates_for_cost(self.minimum, self.maximum)

    def cost_ceiling(self) -> Optional[float]:
        return self.maximum

    def describe(self) -> str:
        bounds = []
        if self.minimum is not None:
            bounds.append(f"min={self.minimum:g}")
        if self.maximum is not None:
            bounds.append(f"max={self.maximum:g}")
        return f"cost({', '.join(bounds)})"


class OpCount(Predicate):
    """Number of operations in the script within ``[minimum, maximum]``."""

    def __init__(
        self,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
    ):
        if minimum is None and maximum is None:
            raise ReproError("op_count requires min and/or max")
        if (
            minimum is not None
            and maximum is not None
            and minimum > maximum
        ):
            raise ReproError(
                f"op_count range is empty: min {minimum} > max {maximum}"
            )
        self.minimum = minimum
        self.maximum = maximum

    def matches(self, doc) -> bool:
        count = len(doc.operations)
        if self.minimum is not None and count < self.minimum:
            return False
        if self.maximum is not None and count > self.maximum:
            return False
        return True

    def candidates(self, index) -> Optional[Set[str]]:
        return index.candidates_for_op_count(self.minimum, self.maximum)

    def describe(self) -> str:
        bounds = []
        if self.minimum is not None:
            bounds.append(f"min={self.minimum}")
        if self.maximum is not None:
            bounds.append(f"max={self.maximum}")
        return f"op_count({', '.join(bounds)})"


class Q:
    """Factory namespace for query predicates (the public entry point)."""

    @staticmethod
    def everything() -> Predicate:
        """Match every diff (useful as a fold seed)."""
        return MatchAll()

    @staticmethod
    def op_kind(*kinds: str) -> Predicate:
        """Diffs containing at least one operation of the given kinds."""
        return OpKind(kinds)

    @staticmethod
    def touches(*labels: str) -> Predicate:
        """Diffs with an operation whose path touches any given label."""
        return Touches(labels)

    @staticmethod
    def cost(min: Optional[float] = None, max: Optional[float] = None) -> Predicate:  # noqa: A002 — mirrors Q.cost(min=..., max=...)
        """Diffs whose total cost lies within ``[min, max]``."""
        return Cost(minimum=min, maximum=max)

    @staticmethod
    def op_count(min: Optional[int] = None, max: Optional[int] = None) -> Predicate:  # noqa: A002
        """Diffs whose script length lies within ``[min, max]``."""
        return OpCount(minimum=min, maximum=max)
