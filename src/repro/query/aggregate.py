"""Aggregations over query results: histograms, churn, divergence.

Pure functions over iterables of :class:`~repro.query.engine.ScriptDoc`
— they consume streams (a single pass, no materialisation of the input)
and return small summary structures:

* :func:`op_kind_histogram` — how a corpus edits: counts per elementary
  operation kind;
* :func:`module_churn` — *where* a corpus edits: per-module operation
  counts and total cost, ranked.  Cost is attributed to a path
  operation's **interior** labels (the modules actually inserted or
  deleted); the terminals anchor the path and exist in both runs;
* :class:`GroupDivergence` — how far apart two sets of runs sit, built
  by :meth:`repro.query.engine.QueryEngine.divergence` from within- and
  cross-group distances plus the cross-pair churn ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


def op_kind_histogram(docs: Iterable) -> Dict[str, int]:
    """Operation counts per kind, summed over the docs' scripts."""
    histogram: Dict[str, int] = {}
    for doc in docs:
        for op in doc.operations:
            histogram[op.kind] = histogram.get(op.kind, 0) + 1
    return histogram


@dataclass
class ModuleChurn:
    """Churn of one module label across a set of diffs."""

    label: str
    operations: int = 0
    total_cost: float = 0.0
    pairs: int = 0  #: number of diffs with at least one touching op


def module_churn(docs: Iterable) -> List[ModuleChurn]:
    """Per-module churn ranking over the docs' scripts.

    An operation's cost is attributed (in full) to each of its interior
    labels; operations rewiring a direct edge have no interior module
    and contribute to no label.  Ranked by descending total cost, ties
    broken by label.
    """
    churn: Dict[str, ModuleChurn] = {}
    for doc in docs:
        touched = set()
        for op in doc.operations:
            for label in op.interior_labels:
                entry = churn.get(label)
                if entry is None:
                    entry = churn[label] = ModuleChurn(label)
                entry.operations += 1
                entry.total_cost += op.cost
                touched.add(label)
        for label in touched:
            churn[label].pairs += 1
    return sorted(
        churn.values(), key=lambda e: (-e.total_cost, e.label)
    )


def _mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


@dataclass
class GroupDivergence:
    """Where and how much two sets of runs diverge.

    ``divergence`` is the mean cross-group distance minus the average
    of the two mean within-group distances — positive when the groups
    are farther from each other than from themselves (i.e. they form
    distinguishable clusters); near zero when the grouping is
    arbitrary.  ``churn`` ranks the modules the cross-group edit
    scripts actually touch, answering *where* executions of the two
    groups diverge most.
    """

    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]
    mean_within_a: float
    mean_within_b: float
    mean_cross: float
    divergence: float
    churn: List[ModuleChurn] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        lines = [
            f"within {list(self.group_a)}: mean {self.mean_within_a:.3f}",
            f"within {list(self.group_b)}: mean {self.mean_within_b:.3f}",
            f"cross: mean {self.mean_cross:.3f} "
            f"(divergence {self.divergence:+.3f})",
        ]
        for entry in self.churn[:5]:
            lines.append(
                f"  {entry.label}: {entry.operations} ops, "
                f"cost {entry.total_cost:g} across {entry.pairs} pairs"
            )
        return lines


def group_divergence(
    group_a,
    group_b,
    within_a: Dict,
    within_b: Dict,
    cross: Dict,
    cross_docs: Iterable,
) -> GroupDivergence:
    """Assemble a :class:`GroupDivergence` from precomputed distances."""
    mean_a = _mean(within_a.values())
    mean_b = _mean(within_b.values())
    mean_cross = _mean(cross.values())
    return GroupDivergence(
        group_a=tuple(group_a),
        group_b=tuple(group_b),
        mean_within_a=mean_a,
        mean_within_b=mean_b,
        mean_cross=mean_cross,
        divergence=mean_cross - (mean_a + mean_b) / 2.0,
        churn=module_churn(cross_docs),
    )
