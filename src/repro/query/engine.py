"""The provenance diff query engine: indexed search over edit scripts.

:class:`QueryEngine` turns a corpus :class:`~repro.corpus.service.DiffService`
into a queryable collection of diffs.  Where PR 1's service answers
*"how far apart are these runs?"* from its distance cache, the engine
answers *"which pairs of runs changed like this?"* — the paper's
motivating scenarios ("which runs dropped the annotation module?",
"where do executions diverge most?") as first-class queries:

* :meth:`select` streams the diffs matching a composable
  :class:`~repro.query.predicates.Predicate` — candidate pairs are
  pruned through the persistent inverted index
  (:class:`~repro.corpus.script_index.ScriptIndex`) before any script
  is loaded, and surviving candidates are verified exactly;
* :meth:`scan` is the deliberately brute-force baseline: it reloads and
  re-diffs every pair from XML with no cache, index, or fingerprint
  shortcuts.  Property tests (and the benchmark) assert the two paths
  return identical results;
* aggregations — :meth:`histogram`, :meth:`churn`,
  :meth:`divergence` — fold streamed results into op-kind counts,
  per-module churn rankings, and group-vs-group divergence reports.

The first query over a cold corpus pays the pairwise diffs once (they
enter the script cache and index as they are computed — the index is
incremental, never rebuilt); every later query over any subset streams
from the warm index at I/O speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.api import diff_runs
from repro.core.edit_script import PathOperation
from repro.corpus.fingerprint import cost_model_key, script_key
from repro.corpus.service import DiffService
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError
from repro.query.aggregate import (
    GroupDivergence,
    ModuleChurn,
    group_divergence,
    module_churn,
    op_kind_histogram,
)
from repro.query.predicates import MatchAll, Predicate


@dataclass
class ScriptDoc:
    """One query result: a run pair and its minimum-cost edit script."""

    spec_name: str
    run_a: str
    run_b: str
    key: Optional[str]  #: directed cache key (None under uncacheable costs)
    distance: float
    operations: List[PathOperation]

    @property
    def pair(self) -> Tuple[str, str]:
        return (self.run_a, self.run_b)

    @property
    def op_count(self) -> int:
        return len(self.operations)

    def __str__(self) -> str:
        return (
            f"{self.run_a} -> {self.run_b}: distance {self.distance:g}, "
            f"{self.op_count} ops"
        )


def _ordered_pairs(names: Sequence[str]) -> List[Tuple[str, str]]:
    """Unordered pairs in listing order — the corpus-wide convention
    shared with :meth:`DiffService.distance_matrix`."""
    return [
        (a, b) for i, a in enumerate(names) for b in names[i + 1:]
    ]


class QueryEngine:
    """Indexed search and aggregation over a corpus of edit scripts."""

    def __init__(self, service: DiffService):
        self.service = service

    # -- corpus resolution ----------------------------------------------
    def _names(
        self, spec_name: str, runs: Optional[Sequence[str]]
    ) -> List[str]:
        names = (
            list(runs) if runs is not None else self.service.runs(spec_name)
        )
        if len(names) != len(set(names)):
            raise ReproError("duplicate run names in query corpus")
        return names

    # -- building --------------------------------------------------------
    def build(
        self,
        spec_name: str,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> int:
        """Ensure every pair's script is cached and indexed; returns the
        number of pairs covered.

        Purely an optimisation valve: :meth:`select` performs the same
        incremental top-up on the fly, so calling this first merely
        front-loads the one-time diff cost (e.g. in an ingest job).
        """
        cost = cost or UnitCost()
        pairs = _ordered_pairs(self._names(spec_name, runs))
        if pairs:
            self.service.edit_scripts(spec_name, pairs, cost)
        return len(pairs)

    # -- querying --------------------------------------------------------
    def select(
        self,
        spec_name: str,
        predicate: Optional[Predicate] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
        pair_filter: Optional[Callable[[str, str], bool]] = None,
    ) -> Iterator[ScriptDoc]:
        """Stream the diffs whose edit scripts satisfy ``predicate``.

        Pairs are enumerated in listing order (the
        :meth:`DiffService.distance_matrix` convention).  Uncached pairs
        are computed (and indexed) on the fly; cached pairs whose keys
        the index rules out are skipped without loading their scripts;
        the rest are loaded and checked exactly.

        ``pair_filter`` restricts evaluation to a subset of the pair
        enumeration *without* changing the order of survivors — the
        cluster's scatter-gather uses it so each worker evaluates only
        the pairs its shard owns and the parent can merge shard results
        back into the exact single-process listing order.
        """
        predicate = predicate if predicate is not None else MatchAll()
        cost = cost or UnitCost()
        names = self._names(spec_name, runs)
        pairs = _ordered_pairs(names)
        if pair_filter is not None:
            pairs = [pair for pair in pairs if pair_filter(*pair)]
        if not pairs:
            return
        cost_key = cost_model_key(cost)
        if cost_key is None:
            # Uncacheable cost model: nothing can be indexed; evaluate
            # each pair's freshly computed script directly.
            for run_a, run_b in pairs:
                record = self.service.edit_script(
                    spec_name, run_a, run_b, cost
                )
                doc = ScriptDoc(
                    spec_name, run_a, run_b, None,
                    record.distance, record.operations,
                )
                if predicate.matches(doc):
                    yield doc
            return

        fingerprints = self.service.fingerprints(spec_name, names)
        keys = {
            (a, b): script_key(
                fingerprints[a], fingerprints[b], cost_key
            )
            for a, b in pairs
        }
        index = self.service.script_index
        # Cost-ceiling gate: a pair whose packing lower bound exceeds
        # the predicate's ceiling has true distance above it too, so it
        # cannot match — drop it before the top-up prices it.  Exact,
        # not approximate: the bound never overestimates, and matches()
        # would have returned False.  Only cold pairs count as skipped
        # DPs (a warm pair's script already exists; nothing was saved).
        ceiling = predicate.cost_ceiling()
        if ceiling is not None:
            bounds = self.service.lower_bounds(spec_name, pairs, cost)
            kept = []
            skipped_cold = 0
            for pair in pairs:
                if bounds.get(pair, 0.0) > ceiling:
                    if not index.has(keys[pair]):
                        skipped_cold += 1
                    continue
                kept.append(pair)
            pairs = kept
            self.service.note_bound_skips(skipped_cold)
            if not pairs:
                return
        # Incremental top-up: index (and cache) whatever this corpus
        # view hasn't seen yet, *before* asking the index to prune.
        # One batch call — one flush — however many pairs are cold.
        missing = [
            pair for pair in pairs if not index.has(keys[pair])
        ]
        if missing:
            self.service.edit_scripts(spec_name, missing, cost)
        candidates = predicate.candidates(index)
        for run_a, run_b in pairs:
            key = keys[(run_a, run_b)]
            if candidates is not None and key not in candidates:
                continue
            record = self.service.cached_script(key)
            if record is None:
                # The cache was pruned between top-up and read (e.g. a
                # deleted index/ directory); recompute transparently.
                record = self.service.edit_script(
                    spec_name, run_a, run_b, cost
                )
            doc = ScriptDoc(
                spec_name, run_a, run_b, key,
                record.distance, record.operations,
            )
            if predicate.matches(doc):
                yield doc

    def scan(
        self,
        spec_name: str,
        predicate: Optional[Predicate] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> Iterator[ScriptDoc]:
        """Brute-force baseline: re-diff every pair, no caches, no index.

        Every run is re-read from its stored XML for every pair it
        participates in, and every edit script is regenerated by
        :func:`repro.core.api.diff_runs`.  Exists so the indexed path
        has an independently computed ground truth to be checked
        against — and a baseline to be benchmarked against.
        """
        predicate = predicate if predicate is not None else MatchAll()
        cost = cost or UnitCost()
        names = self._names(spec_name, runs)
        spec = self.service.store.load_specification(spec_name)
        for run_a, run_b in _ordered_pairs(names):
            result = diff_runs(
                self.service.store.load_run(spec, run_a),
                self.service.store.load_run(spec, run_b),
                cost=cost,
                with_script=True,
            )
            doc = ScriptDoc(
                spec_name, run_a, run_b, None,
                result.distance, list(result.script.operations),
            )
            if predicate.matches(doc):
                yield doc

    # -- aggregations -----------------------------------------------------
    def histogram(
        self,
        spec_name: str,
        predicate: Optional[Predicate] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> Dict[str, int]:
        """Operation-kind histogram over the matching diffs."""
        return op_kind_histogram(
            self.select(spec_name, predicate, cost=cost, runs=runs)
        )

    def churn(
        self,
        spec_name: str,
        predicate: Optional[Predicate] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> List[ModuleChurn]:
        """Per-module churn ranking over the matching diffs."""
        return module_churn(
            self.select(spec_name, predicate, cost=cost, runs=runs)
        )

    def divergence(
        self,
        spec_name: str,
        group_a: Sequence[str],
        group_b: Sequence[str],
        cost: Optional[CostModel] = None,
    ) -> GroupDivergence:
        """Group-vs-group divergence between two disjoint sets of runs.

        Prices only the pairs it needs — within-A, within-B, and the
        A×B cross pairs — through the distance cache, then ranks the
        modules the cross-group edit scripts touch.  All of it warm
        after a prior :meth:`build`/:meth:`select` over the corpus.
        """
        cost = cost or UnitCost()
        group_a = list(group_a)
        group_b = list(group_b)
        if not group_a or not group_b:
            raise ReproError("divergence requires two non-empty groups")
        overlap = set(group_a) & set(group_b)
        if overlap:
            raise ReproError(
                f"divergence groups overlap on {sorted(overlap)}"
            )
        within_a = self.service.distances(
            spec_name, _ordered_pairs(group_a), cost
        )
        within_b = self.service.distances(
            spec_name, _ordered_pairs(group_b), cost
        )
        cross_pairs = [(a, b) for a in group_a for b in group_b]
        # Scripts first: each one's total cost is the distance, and
        # edit_scripts seeds the distance cache — one diff per cold
        # cross pair instead of a distance DP plus a full diff.
        cross_records = self.service.edit_scripts(
            spec_name, cross_pairs, cost
        )
        cross = {
            pair: record.distance
            for pair, record in cross_records.items()
        }
        cross_docs = (
            ScriptDoc(
                spec_name, a, b, None,
                record.distance, record.operations,
            )
            for (a, b), record in cross_records.items()
        )
        return group_divergence(
            group_a, group_b, within_a, within_b, cross, cross_docs
        )
