"""Typed query engine over edit scripts and corpora.

Where :mod:`repro.corpus` made *distances* a corpus-scale commodity,
this package does the same for the *edit scripts themselves*: a
composable predicate API (:class:`Q`), an indexed streaming evaluator
(:class:`QueryEngine`), and aggregations (op-kind histograms, per-module
churn rankings, group-vs-group divergence) — the paper's motivating
"queries over collections of diffs" as a first-class subsystem.

>>> from repro.query import Q
>>> predicate = Q.op_kind("path-deletion") & Q.touches("getGOAnnot")
>>> # engine = QueryEngine(service); engine.select("PA", predicate)
"""

from repro.query.aggregate import (
    GroupDivergence,
    ModuleChurn,
    group_divergence,
    module_churn,
    op_kind_histogram,
)
from repro.query.engine import QueryEngine, ScriptDoc
from repro.query.predicates import (
    And,
    Cost,
    MatchAll,
    Not,
    OpCount,
    OpKind,
    Or,
    Predicate,
    Q,
    Touches,
)

__all__ = [
    "Q",
    "Predicate",
    "MatchAll",
    "And",
    "Or",
    "Not",
    "OpKind",
    "Touches",
    "Cost",
    "OpCount",
    "QueryEngine",
    "ScriptDoc",
    "op_kind_histogram",
    "module_churn",
    "ModuleChurn",
    "GroupDivergence",
    "group_divergence",
]
