"""Structural validators for annotated SP-trees (Lemmas 4.2 and 4.4).

Specification trees satisfy (Lemma 4.2):

1. every internal node is S, P, F or L;
2. every leaf is a Q node;
3. every node's type differs from its parent's type;
4. every S or P node has at least two children;
5. every F or L node has exactly one child, of type S or Q (forks) or
   S, Q or P (loops).

Run trees relax this (Lemma 4.4): P nodes may have a single child, and F/L
nodes may have multiple children, all of the same type.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GraphStructureError
from repro.sptree.nodes import NodeType, SPTree


def validate_spec_tree(tree: SPTree) -> None:
    """Validate the invariants of an annotated specification tree."""

    def visit(node: SPTree, parent: Optional[SPTree]) -> None:
        if parent is not None and node.kind is parent.kind:
            raise GraphStructureError(
                f"node of type {node.kind} has a parent of the same type"
            )
        if node.kind is NodeType.Q:
            return
        if node.kind in (NodeType.S, NodeType.P):
            if node.degree < 2:
                raise GraphStructureError(
                    f"spec {node.kind} node must have >= 2 children, "
                    f"has {node.degree}"
                )
        elif node.kind is NodeType.F:
            if node.degree != 1:
                raise GraphStructureError(
                    f"spec F node must have exactly one child, has {node.degree}"
                )
            if node.children[0].kind not in (NodeType.S, NodeType.Q):
                raise GraphStructureError(
                    "spec F node's child must be S or Q (series subgraph), "
                    f"got {node.children[0].kind}"
                )
        elif node.kind is NodeType.L:
            if node.degree != 1:
                raise GraphStructureError(
                    f"spec L node must have exactly one child, has {node.degree}"
                )
            if node.children[0].kind not in (
                NodeType.S,
                NodeType.Q,
                NodeType.P,
            ):
                raise GraphStructureError(
                    "spec L node's child must be S, Q or P (complete "
                    f"subgraph), got {node.children[0].kind}"
                )
        for child in node.children:
            visit(child, node)

    visit(tree, None)


def validate_run_tree(tree: SPTree, require_origin: bool = False) -> None:
    """Validate the invariants of an annotated run tree (Lemma 4.4)."""

    def visit(node: SPTree, parent: Optional[SPTree]) -> None:
        if require_origin and node.origin is None:
            raise GraphStructureError("run tree node is missing its origin")
        if (
            parent is not None
            and node.kind is parent.kind
            and parent.kind in (NodeType.S, NodeType.P)
        ):
            raise GraphStructureError(
                f"node of type {node.kind} has a parent of the same type"
            )
        if node.kind is NodeType.Q:
            return
        if node.kind is NodeType.S:
            if node.degree < 2:
                raise GraphStructureError(
                    f"run S node must have >= 2 children, has {node.degree}"
                )
        elif node.kind is NodeType.P:
            if node.degree < 1:
                raise GraphStructureError("run P node must have >= 1 child")
        elif node.kind in (NodeType.F, NodeType.L):
            if node.degree < 1:
                raise GraphStructureError(
                    f"run {node.kind} node must have >= 1 child"
                )
            kinds = {child.kind for child in node.children}
            if len(kinds) > 1:
                raise GraphStructureError(
                    f"run {node.kind} node children must share a type, "
                    f"got {sorted(k.value for k in kinds)}"
                )
        for child in node.children:
            visit(child, node)

    visit(tree, None)
