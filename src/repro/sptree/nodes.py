"""SP-tree node model: Q / S / P / F / L nodes (Sections IV and VI).

An SP-tree represents the construction of an SP-graph:

* ``Q`` leaves represent single edges (basic SP-graphs);
* ``S`` nodes represent series compositions (children **ordered**);
* ``P`` nodes represent parallel compositions (children **unordered**);
* ``F`` nodes mark fork executions (children unordered copies);
* ``L`` nodes mark loop executions (children **ordered** iterations,
  joined by implicit ``(t(H), s(H))`` edges in the underlying graph).

Trees are immutable: every editing step in the library builds new nodes.
Identity (``id(node)``) is therefore a safe dictionary key for the dynamic
programs, while :meth:`SPTree.structure_key` provides value-level
equivalence ``≡`` — equality up to reordering children of P and F nodes and
up to renaming node instances with equal labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

from repro.errors import GraphStructureError
from repro.graphs.flow_network import FlowNetwork


class NodeType(enum.Enum):
    """The five SP-tree node types."""

    Q = "Q"
    S = "S"
    P = "P"
    F = "F"
    L = "L"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class EdgeRef:
    """A reference to a concrete graph edge carried by a ``Q`` leaf.

    ``source``/``sink`` are node ids in the underlying graph (unique per
    run instance, e.g. ``"3a"``); ``source_label``/``sink_label`` are the
    specification labels (e.g. ``"3"``).  ``key`` disambiguates parallel
    multi-edges.
    """

    source: object
    sink: object
    source_label: str
    sink_label: str
    key: int = 0


class SPTree:
    """An immutable SP-tree node.

    Use the module-level constructors :func:`q_node`, :func:`s_node`,
    :func:`p_node`, :func:`f_node` and :func:`l_node` rather than calling
    this class directly.

    Attributes
    ----------
    kind:
        The :class:`NodeType`.
    children:
        Tuple of child nodes (empty for ``Q`` leaves).
    edge:
        The :class:`EdgeRef` for ``Q`` leaves, else ``None``.
    origin:
        For nodes of a *run* tree: the specification-tree node this node was
        derived from (the homologous-node map ``h`` of Section V-A).
        ``None`` for specification trees.
    """

    __slots__ = (
        "kind",
        "children",
        "edge",
        "origin",
        "_leaf_count",
        "_source",
        "_sink",
        "_source_label",
        "_sink_label",
        "_branch_free",
        "_num_nodes",
        "_structure_key",
    )

    def __init__(
        self,
        kind: NodeType,
        children: Tuple["SPTree", ...] = (),
        edge: Optional[EdgeRef] = None,
        origin: Optional["SPTree"] = None,
    ):
        self.kind = kind
        self.children = tuple(children)
        self.edge = edge
        self.origin = origin
        self._structure_key = None

        if kind is NodeType.Q:
            if edge is None:
                raise GraphStructureError("Q node requires an EdgeRef")
            if self.children:
                raise GraphStructureError("Q node cannot have children")
            self._leaf_count = 1
            self._source = edge.source
            self._sink = edge.sink
            self._source_label = edge.source_label
            self._sink_label = edge.sink_label
            self._branch_free = True
            self._num_nodes = 1
            return

        if edge is not None:
            raise GraphStructureError(f"{kind} node cannot carry an EdgeRef")
        if not self.children:
            raise GraphStructureError(f"{kind} node requires children")

        first = self.children[0]
        last = self.children[-1]
        self._leaf_count = sum(c._leaf_count for c in self.children)
        self._num_nodes = 1 + sum(c._num_nodes for c in self.children)
        self._source = first._source
        self._source_label = first._source_label
        self._sink = last._sink
        self._sink_label = last._sink_label

        true_branch = len(self.children) > 1 and kind in (
            NodeType.P,
            NodeType.F,
            NodeType.L,
        )
        self._branch_free = not true_branch and all(
            c._branch_free for c in self.children
        )

        if kind in (NodeType.P, NodeType.F):
            for child in self.children[1:]:
                if (
                    child._source != first._source
                    or child._sink != first._sink
                ):
                    raise GraphStructureError(
                        f"{kind} children must share terminals; got "
                        f"({first._source!r}, {first._sink!r}) vs "
                        f"({child._source!r}, {child._sink!r})"
                    )
        elif kind is NodeType.S:
            for left, right in zip(self.children, self.children[1:]):
                if left._sink != right._source:
                    raise GraphStructureError(
                        "S children must chain: sink "
                        f"{left._sink!r} != source {right._source!r}"
                    )
        elif kind is NodeType.L:
            for left, right in zip(self.children, self.children[1:]):
                if (
                    left._sink_label != right._sink_label
                    or left._source_label != right._source_label
                ):
                    raise GraphStructureError(
                        "L iterations must share terminal labels"
                    )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True for ``Q`` nodes."""
        return self.kind is NodeType.Q

    @property
    def degree(self) -> int:
        """Number of children, ``d(v)``."""
        return len(self.children)

    @property
    def is_true(self) -> bool:
        """A *true* node has more than one child (Section IV-D)."""
        return len(self.children) > 1

    @property
    def is_pseudo(self) -> bool:
        """A *pseudo* node is an internal node with exactly one child."""
        return self.kind is not NodeType.Q and len(self.children) == 1

    @property
    def leaf_count(self) -> int:
        """Number of ``Q`` leaves in this subtree, ``|Leaf(T[v])|``."""
        return self._leaf_count

    @property
    def num_nodes(self) -> int:
        """Total number of tree nodes in this subtree."""
        return self._num_nodes

    @property
    def source(self):
        """Graph node id of the subgraph source ``s(v)``."""
        return self._source

    @property
    def sink(self):
        """Graph node id of the subgraph sink ``t(v)``."""
        return self._sink

    @property
    def source_label(self) -> str:
        """Specification label of ``s(v)`` (used by the cost model)."""
        return self._source_label

    @property
    def sink_label(self) -> str:
        """Specification label of ``t(v)`` (used by the cost model)."""
        return self._sink_label

    @property
    def is_branch_free(self) -> bool:
        """True iff the subtree contains no true P, F or L node (Def. 4.1).

        The extended model treats true ``L`` nodes like true ``F`` nodes:
        an elementary edit operation touches at most one loop iteration.
        """
        return self._branch_free

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Slot state minus the ``structure_key`` memo.

        Trees travel to process-pool workers (and into persisted
        payloads) constantly; the memo is derived data that can hold a
        large nested tuple, so dropping it keeps pickles lean and makes
        a pickle byte-stable regardless of which queries ran before it.
        """
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_structure_key"
        }

    def __setstate__(self, state):
        """Restore slots; the memo starts empty and recomputes on demand."""
        for slot, value in state.items():
            setattr(self, slot, value)
        self._structure_key = None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter_nodes(self, order: str = "pre") -> Iterator["SPTree"]:
        """Iterate over the subtree in ``"pre"`` or ``"post"`` order."""
        if order == "pre":
            yield self
        for child in self.children:
            yield from child.iter_nodes(order)
        if order == "post":
            yield self

    def leaves(self) -> Iterator["SPTree"]:
        """Iterate over the ``Q`` leaves left to right."""
        if self.kind is NodeType.Q:
            yield self
        else:
            for child in self.children:
                yield from child.leaves()

    def leaf_edges(self) -> Iterator[EdgeRef]:
        """Iterate over the :class:`EdgeRef` payloads of the leaves."""
        for leaf in self.leaves():
            yield leaf.edge

    def find(self, predicate: Callable[["SPTree"], bool]) -> Optional["SPTree"]:
        """First node in pre-order satisfying ``predicate`` (or ``None``)."""
        for node in self.iter_nodes("pre"):
            if predicate(node):
                return node
        return None

    # ------------------------------------------------------------------
    # Equivalence
    # ------------------------------------------------------------------
    def structure_key(self):
        """A hashable canonical key realising the ``≡`` relation.

        Two trees have equal structure keys iff they differ only in

        * the order of children of ``P`` and ``F`` nodes, and
        * the concrete node-instance ids (labels must agree).

        ``S`` and ``L`` children keep their order in the key.
        """
        if self._structure_key is None:
            if self.kind is NodeType.Q:
                key = ("Q", self._source_label, self._sink_label)
            else:
                child_keys = [c.structure_key() for c in self.children]
                if self.kind in (NodeType.P, NodeType.F):
                    child_keys.sort()
                key = (self.kind.value, tuple(child_keys))
            self._structure_key = key
        return self._structure_key

    def equivalent(self, other: "SPTree") -> bool:
        """``T ≡ T'``: equality up to P/F child order and instance renaming."""
        return self.structure_key() == other.structure_key()

    # ------------------------------------------------------------------
    # Graph materialisation
    # ------------------------------------------------------------------
    def to_graph(self, name: str = "") -> FlowNetwork:
        """Materialise ``Graph(T)``: the flow network this tree represents.

        ``Q`` leaves contribute their referenced edges; ``L`` nodes with
        multiple iterations additionally contribute the implicit
        ``(t(iteration_i), s(iteration_{i+1}))`` edges (Section VI).
        """
        graph = FlowNetwork(name=name)

        def ensure_node(node_id, label):
            if node_id not in graph:
                graph.add_node(node_id, label)

        def visit(node: "SPTree") -> None:
            if node.kind is NodeType.Q:
                ref = node.edge
                ensure_node(ref.source, ref.source_label)
                ensure_node(ref.sink, ref.sink_label)
                graph.add_edge(ref.source, ref.sink)
                return
            for child in node.children:
                visit(child)
            if node.kind is NodeType.L:
                for left, right in zip(node.children, node.children[1:]):
                    ensure_node(left.sink, left.sink_label)
                    ensure_node(right.source, right.source_label)
                    graph.add_edge(left.sink, right.source)

        visit(self)
        return graph

    # ------------------------------------------------------------------
    # Display
    # ------------------------------------------------------------------
    def pretty(self, indent: str = "  ") -> str:
        """Multi-line indented rendering (used by PDiffView and tests)."""
        lines = []

        def walk(node: "SPTree", depth: int) -> None:
            if node.kind is NodeType.Q:
                lines.append(
                    f"{indent * depth}Q({node.source!r} -> {node.sink!r})"
                )
            else:
                lines.append(f"{indent * depth}{node.kind.value}")
                for child in node.children:
                    walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        if self.kind is NodeType.Q:
            return f"SPTree(Q, {self._source!r}->{self._sink!r})"
        return (
            f"SPTree({self.kind.value}, degree={self.degree}, "
            f"leaves={self._leaf_count})"
        )


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def q_node(edge: EdgeRef, origin: Optional[SPTree] = None) -> SPTree:
    """Create a ``Q`` leaf for ``edge``."""
    return SPTree(NodeType.Q, (), edge=edge, origin=origin)


def s_node(children, origin: Optional[SPTree] = None) -> SPTree:
    """Create an ``S`` node over ordered ``children`` (at least two)."""
    children = tuple(children)
    if len(children) < 2:
        raise GraphStructureError("S node requires at least two children")
    return SPTree(NodeType.S, children, origin=origin)


def p_node(children, origin: Optional[SPTree] = None) -> SPTree:
    """Create a ``P`` node.

    Specification trees require at least two children; run trees allow a
    single (pseudo) child — validation is performed separately by
    :mod:`repro.sptree.validate`.
    """
    return SPTree(NodeType.P, tuple(children), origin=origin)


def f_node(children, origin: Optional[SPTree] = None) -> SPTree:
    """Create an ``F`` node (one child in specs, one or more in runs)."""
    return SPTree(NodeType.F, tuple(children), origin=origin)


def l_node(children, origin: Optional[SPTree] = None) -> SPTree:
    """Create an ``L`` node (one child in specs, ordered iterations in runs)."""
    return SPTree(NodeType.L, tuple(children), origin=origin)


def with_origin(node: SPTree, origin: SPTree) -> SPTree:
    """Return a copy of ``node`` (sharing children) with ``origin`` set."""
    return SPTree(node.kind, node.children, edge=node.edge, origin=origin)
