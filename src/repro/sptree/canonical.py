"""Canonical SP-tree construction by series/parallel reduction (§IV-A).

The tree decomposition of an SP-graph is computed by exhaustively applying
two local reductions, each of which merges the SP-trees carried on the
affected edges:

* **parallel reduction** — two edges with the same endpoints ``(u, v)``
  merge into one edge carrying the P-composition of their trees;
* **series reduction** — an internal node with in-degree 1 and out-degree 1
  merges its two incident edges into one edge carrying the S-composition.

A flow network is series-parallel iff the reductions terminate with a
single ``s -> t`` edge [Valdes, Tarjan, Lawler 1982].  Merging flattens
same-type adjacent nodes on the fly, so the resulting tree is already
*canonical*: no S child of an S node, no P child of a P node (the canonical
SP-tree is unique up to reordering of P children — Lemma in §IV-A).

When the reductions get stuck, the residual graph embeds the four-node
forbidden minor and :class:`~repro.errors.NotSeriesParallelError` is raised
with the residual edge list for diagnostics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import GraphStructureError, NotSeriesParallelError
from repro.graphs.flow_network import FlowNetwork, NodeId
from repro.sptree.nodes import EdgeRef, NodeType, SPTree, q_node


def _combine_series(left: SPTree, right: SPTree) -> SPTree:
    """S-composition with same-type flattening (associativity, Lemma 4.1)."""
    left_parts = left.children if left.kind is NodeType.S else (left,)
    right_parts = right.children if right.kind is NodeType.S else (right,)
    return SPTree(NodeType.S, left_parts + right_parts)


def _combine_parallel(left: SPTree, right: SPTree) -> SPTree:
    """P-composition with same-type flattening."""
    left_parts = left.children if left.kind is NodeType.P else (left,)
    right_parts = right.children if right.kind is NodeType.P else (right,)
    return SPTree(NodeType.P, left_parts + right_parts)


class _Reducer:
    """Worklist-driven series/parallel reduction engine."""

    def __init__(self, graph: FlowNetwork):
        graph.validate_flow_network()
        if not graph.is_acyclic():
            raise GraphStructureError(
                "SP decomposition requires an acyclic flow network"
            )
        self.source = graph.source()
        self.sink = graph.sink()
        if graph.num_edges == 0:
            raise GraphStructureError("SP graph must contain at least one edge")

        # Edge records: eid -> (u, v, tree); adjacency via eid sets.
        self.trees: Dict[int, SPTree] = {}
        self.ends: Dict[int, Tuple[NodeId, NodeId]] = {}
        self.out: Dict[NodeId, Set[int]] = {n: set() for n in graph.nodes()}
        self.inc: Dict[NodeId, Set[int]] = {n: set() for n in graph.nodes()}
        self.pairs: Dict[Tuple[NodeId, NodeId], List[int]] = {}

        for eid, (u, v, key) in enumerate(graph.edges()):
            ref = EdgeRef(
                source=u,
                sink=v,
                source_label=graph.label(u),
                sink_label=graph.label(v),
                key=key,
            )
            self.trees[eid] = q_node(ref)
            self.ends[eid] = (u, v)
            self.out[u].add(eid)
            self.inc[v].add(eid)
            self.pairs.setdefault((u, v), []).append(eid)
        self._next_eid = graph.num_edges

    # -- primitive updates ------------------------------------------------
    def _drop_edge(self, eid: int) -> None:
        u, v = self.ends.pop(eid)
        self.out[u].discard(eid)
        self.inc[v].discard(eid)
        self.pairs[(u, v)].remove(eid)
        del self.trees[eid]

    def _add_edge(self, u: NodeId, v: NodeId, tree: SPTree) -> int:
        eid = self._next_eid
        self._next_eid += 1
        self.trees[eid] = tree
        self.ends[eid] = (u, v)
        self.out[u].add(eid)
        self.inc[v].add(eid)
        self.pairs.setdefault((u, v), []).append(eid)
        return eid

    # -- reductions ---------------------------------------------------------
    def _parallel_reduce(self, u: NodeId, v: NodeId) -> None:
        bucket = self.pairs.get((u, v), [])
        while len(bucket) >= 2:
            first, second = bucket[0], bucket[1]
            merged = _combine_parallel(self.trees[first], self.trees[second])
            self._drop_edge(first)
            self._drop_edge(second)
            self._add_edge(u, v, merged)
            bucket = self.pairs.get((u, v), [])

    def _try_series(self, node: NodeId) -> Optional[Tuple[NodeId, NodeId]]:
        """Series-reduce ``node`` if eligible; return the new edge's ends."""
        if node == self.source or node == self.sink:
            return None
        if len(self.inc[node]) != 1 or len(self.out[node]) != 1:
            return None
        in_eid = next(iter(self.inc[node]))
        out_eid = next(iter(self.out[node]))
        u = self.ends[in_eid][0]
        w = self.ends[out_eid][1]
        merged = _combine_series(self.trees[in_eid], self.trees[out_eid])
        self._drop_edge(in_eid)
        self._drop_edge(out_eid)
        self._add_edge(u, w, merged)
        return (u, w)

    def run(self) -> SPTree:
        """Apply reductions to exhaustion; return the canonical SP-tree."""
        for (u, v) in list(self.pairs):
            self._parallel_reduce(u, v)
        queue = [n for n in self.out if n not in (self.source, self.sink)]
        pending = set(queue)
        while queue:
            node = queue.pop()
            pending.discard(node)
            result = self._try_series(node)
            if result is None:
                continue
            u, w = result
            self._parallel_reduce(u, w)
            for neighbour in (u, w):
                if neighbour not in pending and neighbour not in (
                    self.source,
                    self.sink,
                ):
                    pending.add(neighbour)
                    queue.append(neighbour)

        if len(self.trees) == 1:
            (eid,) = self.trees
            u, v = self.ends[eid]
            if (u, v) == (self.source, self.sink):
                return self.trees[eid]
        residual = [
            (self.ends[eid][0], self.ends[eid][1]) for eid in sorted(self.ends)
        ]
        raise NotSeriesParallelError(
            "graph is not series-parallel: "
            f"{len(residual)} irreducible edges remain "
            "(the residual embeds the four-node forbidden minor)",
            residual_edges=residual,
        )


def canonical_sp_tree(graph: FlowNetwork) -> SPTree:
    """Compute the canonical SP-tree of an SP flow network.

    Raises
    ------
    GraphStructureError
        If ``graph`` is not an acyclic flow network.
    NotSeriesParallelError
        If ``graph`` is a flow network but not series-parallel.

    Notes
    -----
    Runs in near-linear time: every reduction removes one edge, and each
    reduction is found in amortised O(1) via the worklist.
    """
    return _Reducer(graph).run()


def is_series_parallel(graph: FlowNetwork) -> bool:
    """True iff ``graph`` is an acyclic SP flow network."""
    try:
        canonical_sp_tree(graph)
    except (NotSeriesParallelError, GraphStructureError):
        return False
    return True
