"""repro.sptree subpackage."""
