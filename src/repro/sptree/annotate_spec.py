"""Algorithm 1: annotated SP-trees for specifications (§IV-B, §VI).

Given the canonical SP-tree of a specification graph and a family of fork
(``F``) and loop (``L``) elements — each an edge set of the graph — this
module inserts the corresponding F/L wrapper nodes:

* if an element's edge set equals the leaf set of an existing node ``v``,
  the wrapper becomes the parent of ``v`` (case 1 of Algorithm 1);
* otherwise the element must equal the union of a consecutive subsequence
  of two or more children of an S node, which is grouped under a fresh S
  node first (case 2).

Elements are processed in ascending edge-set size, which is sound for
laminar families: by the time an element is placed, all strictly smaller
nested elements are already wrapped and appear as single child units.

The module also enforces the model-side constraints of Section VI:

* fork elements must be *series subgraphs* (Q leaves, S nodes, or
  consecutive S-children runs — Lemma 4.1);
* loop elements must be *complete subgraphs* (all paths between their
  terminals): the root, a single child of an S node, or a consecutive
  proper subsequence of S children;
* the edge sets of all elements form a laminar family with no duplicates
  (Definition 3.6, and ``F ∩ L = ∅``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SpecificationError
from repro.sptree.nodes import EdgeRef, NodeType, SPTree

EdgeKey = Tuple[object, object, int]
EdgeSet = FrozenSet[EdgeKey]


@dataclass(frozen=True)
class Annotation:
    """A fork or loop element of a specification.

    Attributes
    ----------
    kind:
        ``NodeType.F`` or ``NodeType.L``.
    edges:
        The element's edge set, as ``(u, v, key)`` graph edge ids.
    name:
        Display name (auto-generated as ``F1``/``L1``… when omitted).
    """

    kind: NodeType
    edges: EdgeSet
    name: str = ""

    def __post_init__(self):
        if self.kind not in (NodeType.F, NodeType.L):
            raise SpecificationError(
                f"annotation kind must be F or L, got {self.kind}"
            )
        if not self.edges:
            raise SpecificationError("annotation edge set must be non-empty")


def check_laminar(annotations: List[Annotation]) -> None:
    """Validate Definition 3.6 over the annotation edge sets.

    Raises :class:`SpecificationError` when two sets properly intersect or
    coincide (coinciding sets would make fork/loop nesting ambiguous and
    would violate ``F ∩ L = ∅``).
    """
    for i, first in enumerate(annotations):
        for second in annotations[i + 1 :]:
            a, b = first.edges, second.edges
            if a == b:
                raise SpecificationError(
                    f"duplicate fork/loop edge sets: {first.name or 'element'}"
                    f" and {second.name or 'element'} cover the same edges"
                )
            if a & b and not (a < b or b < a):
                raise SpecificationError(
                    "fork/loop family is not laminar: "
                    f"{first.name or sorted(a)} and {second.name or sorted(b)}"
                    " properly intersect"
                )


class _Mut:
    """Mutable construction node used only inside this module."""

    __slots__ = ("kind", "children", "edge", "parent", "leafset")

    def __init__(self, kind: NodeType, children, edge=None):
        self.kind = kind
        self.children: List["_Mut"] = list(children)
        self.edge: Optional[EdgeRef] = edge
        self.parent: Optional["_Mut"] = None
        self.leafset: EdgeSet = frozenset()
        for child in self.children:
            child.parent = self


def _edge_id(ref: EdgeRef) -> EdgeKey:
    return (ref.source, ref.sink, ref.key)


def _build_mut(node: SPTree) -> _Mut:
    if node.kind is NodeType.Q:
        mut = _Mut(NodeType.Q, (), edge=node.edge)
        mut.leafset = frozenset({_edge_id(node.edge)})
        return mut
    children = [_build_mut(child) for child in node.children]
    mut = _Mut(node.kind, children)
    mut.leafset = frozenset().union(*(c.leafset for c in children))
    return mut


def _descend(root: _Mut, target: EdgeSet) -> _Mut:
    """Deepest node whose leaf set contains ``target`` (Algorithm 1 line 3)."""
    node = root
    while True:
        next_node = None
        for child in node.children:
            if target <= child.leafset:
                next_node = child
                break
        if next_node is None:
            return node
        node = next_node


def _wrap(node: _Mut, kind: NodeType) -> _Mut:
    """Insert a ``kind`` wrapper as the parent of ``node`` (case 1)."""
    wrapper = _Mut(kind, ())
    wrapper.leafset = node.leafset
    parent = node.parent
    if parent is not None:
        index = parent.children.index(node)
        parent.children[index] = wrapper
    wrapper.parent = parent
    wrapper.children = [node]
    node.parent = wrapper
    return wrapper


def _group_consecutive(
    node: _Mut, target: EdgeSet, annotation: Annotation
) -> _Mut:
    """Case 2: group the consecutive S-children covering ``target``.

    Returns the fresh inner S node; raises when ``target`` does not align
    with a consecutive run of children.
    """
    start = None
    end = None
    covered: set = set()
    for index, child in enumerate(node.children):
        overlap = child.leafset & target
        if not overlap:
            if start is not None and end is None:
                end = index
            continue
        if overlap != child.leafset:
            raise SpecificationError(
                f"{annotation.name or 'element'}: edge set cuts through a "
                "subtree and is not a series/complete subgraph"
            )
        if start is None:
            start = index
        elif end is not None:
            raise SpecificationError(
                f"{annotation.name or 'element'}: edge set is not a "
                "consecutive run of series children"
            )
        covered |= child.leafset
    if start is None or covered != set(target):
        raise SpecificationError(
            f"{annotation.name or 'element'}: edge set does not align with "
            "the specification structure"
        )
    if end is None:
        end = len(node.children)

    group = node.children[start:end]
    inner = _Mut(NodeType.S, group)
    inner.leafset = frozenset(target)
    inner.parent = node
    node.children[start:end] = [inner]
    return inner


def _check_fork_target(node: _Mut, annotation: Annotation) -> None:
    if node.kind not in (NodeType.S, NodeType.Q):
        raise SpecificationError(
            f"fork {annotation.name or sorted(annotation.edges)} is not a "
            f"series subgraph (tree node has type {node.kind}); fork a "
            "parallel subgraph by forking each of its branches instead"
        )


def _check_loop_target(node: _Mut, annotation: Annotation) -> None:
    if node.kind not in (NodeType.S, NodeType.Q, NodeType.P):
        raise SpecificationError(
            f"loop {annotation.name or sorted(annotation.edges)} collides "
            f"with an existing {node.kind} wrapper"
        )
    parent = node.parent
    if parent is None:
        return  # the whole graph is trivially complete
    if parent.kind is NodeType.S:
        return  # a single S child is a complete subgraph
    raise SpecificationError(
        f"loop {annotation.name or sorted(annotation.edges)} is not a "
        "complete subgraph: it is a parallel branch (or nested wrapper) "
        "whose terminals admit paths outside the element"
    )


def _freeze(
    mut: _Mut, registry: Dict[int, SPTree], wrappers: Dict[int, Annotation]
) -> SPTree:
    if mut.kind is NodeType.Q:
        frozen = SPTree(NodeType.Q, (), edge=mut.edge)
    else:
        children = tuple(
            _freeze(child, registry, wrappers) for child in mut.children
        )
        frozen = SPTree(mut.kind, children)
    registry[id(mut)] = frozen
    return frozen


def annotate_specification_tree(
    canonical_tree: SPTree, annotations: List[Annotation]
) -> Tuple[SPTree, Dict[Annotation, SPTree]]:
    """Run Algorithm 1 and return ``(annotated_tree, element -> F/L node)``.

    ``annotations`` must pass :func:`check_laminar`; elements are placed in
    ascending edge-set size so nested wrappers are built inside-out.
    """
    check_laminar(annotations)
    all_edges = frozenset(_edge_id(ref) for ref in canonical_tree.leaf_edges())
    for annotation in annotations:
        missing = annotation.edges - all_edges
        if missing:
            raise SpecificationError(
                f"{annotation.name or 'element'} references edges not in the "
                f"specification: {sorted(missing)}"
            )

    root = _build_mut(canonical_tree)
    placed: List[Tuple[Annotation, _Mut]] = []
    for annotation in sorted(annotations, key=lambda a: len(a.edges)):
        target = annotation.edges
        node = _descend(root, target)
        if node.leafset == target:
            if annotation.kind is NodeType.F:
                _check_fork_target(node, annotation)
            else:
                _check_loop_target(node, annotation)
            wrapper = _wrap(node, annotation.kind)
        else:
            if node.kind is not NodeType.S:
                raise SpecificationError(
                    f"{annotation.name or 'element'}: edge set does not "
                    "correspond to a series/complete subgraph "
                    f"(split under a {node.kind} node)"
                )
            inner = _group_consecutive(node, target, annotation)
            wrapper = _wrap(inner, annotation.kind)
        if wrapper.parent is None:
            root = wrapper
        placed.append((annotation, wrapper))

    registry: Dict[int, SPTree] = {}
    frozen_root = _freeze(root, registry, {})
    element_nodes = {
        annotation: registry[id(wrapper)] for annotation, wrapper in placed
    }
    return frozen_root, element_nodes
