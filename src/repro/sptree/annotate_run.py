"""Algorithms 2 and 5: annotated SP-trees for valid runs (``f''``).

Given a specification ``(G, F, L)`` with annotated tree ``T_G`` and a run
graph ``R``, this module computes the annotated SP-tree ``T_R`` with every
node carrying its *origin* — the ``T_G`` node it derives from (the
homologous-node map ``h`` of Section V-A).

The construction is a deterministic simulation of the nondeterministic tree
execution function ``f'``: the canonical SP-tree of ``R`` is matched
against ``T_G`` top-down, grouping run subtrees by the specification
subtree their *leaf images* fall into.

Leaf images
-----------
Every run edge ``(u, v)`` maps to a marker:

* ``("edge", Label(u), Label(v))`` when the label pair is a specification
  edge, or
* ``("loop", Label(u), Label(v))`` when it is the implicit back-edge
  ``(t(H), s(H))`` of a loop ``H ∈ L`` (Section VI).

Specification labels are unique, so an edge's marker is unambiguous, and —
except for direct parallel multi-edges between the same node pair — a
marker occurs in exactly one child of any S or P specification node.  The
multi-edge ambiguity (exercised by the paper's ``r -> 0`` parallel
workload, Fig. 12) is resolved by a deterministic greedy assignment among
the identical branches; since those branches are identical subtrees, any
assignment yields ``≡``-equivalent results.

Any structural mismatch raises :class:`~repro.errors.InvalidRunError`:
``f''`` doubles as the SP-model validity checker.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidRunError
from repro.graphs.flow_network import FlowNetwork
from repro.graphs.homomorphism import check_valid_run
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.nodes import NodeType, SPTree
from repro.sptree.validate import validate_run_tree

Marker = Tuple[str, str, str]


class _Annotator:
    def __init__(self, spec):
        self.spec = spec
        self.spec_edge_pairs = {
            (spec.graph.label(u), spec.graph.label(v))
            for u, v, _ in spec.graph.edges()
        }
        self.loop_marker_of_node: Dict[int, Marker] = {}
        for annotation in spec.loop_elements:
            node = spec.element_nodes[annotation]
            self.loop_marker_of_node[id(node)] = (
                "loop",
                node.sink_label,
                node.source_label,
            )
        self.loop_pairs = {
            (marker[1], marker[2])
            for marker in self.loop_marker_of_node.values()
        }
        # Memos hold (node, image) pairs: keeping a strong reference to the
        # keyed node prevents id() reuse after garbage collection (the run
        # side memoises synthetic grouping wrappers, which are temporaries).
        self._spec_images: Dict[int, Tuple[SPTree, frozenset]] = {}
        self._run_images: Dict[int, Tuple[SPTree, frozenset]] = {}

    # -- leaf images -----------------------------------------------------
    def leaf_marker(self, leaf: SPTree) -> Marker:
        pair = (leaf.source_label, leaf.sink_label)
        if pair in self.spec_edge_pairs:
            return ("edge", pair[0], pair[1])
        if pair in self.loop_pairs:
            return ("loop", pair[0], pair[1])
        raise InvalidRunError(
            f"run edge {leaf.source!r} -> {leaf.sink!r} maps to label pair "
            f"{pair!r}, which is neither a specification edge nor a loop "
            "back-edge"
        )

    def spec_image(self, node: SPTree) -> frozenset:
        """Markers covered by a specification subtree (memoised)."""
        cached = self._spec_images.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        if node.kind is NodeType.Q:
            image = frozenset(
                {("edge", node.source_label, node.sink_label)}
            )
        else:
            image = frozenset().union(
                *(self.spec_image(child) for child in node.children)
            )
            if node.kind is NodeType.L:
                image |= {self.loop_marker_of_node[id(node)]}
        self._spec_images[id(node)] = (node, image)
        return image

    def run_image(self, node: SPTree) -> frozenset:
        """Markers covered by a run subtree (memoised)."""
        cached = self._run_images.get(id(node))
        if cached is not None and cached[0] is node:
            return cached[1]
        if node.kind is NodeType.Q:
            image = frozenset({self.leaf_marker(node)})
        else:
            image = frozenset().union(
                *(self.run_image(child) for child in node.children)
            )
        self._run_images[id(node)] = (node, image)
        return image

    # -- grouping helpers --------------------------------------------------
    @staticmethod
    def _wrap_series(group: Sequence[SPTree]) -> SPTree:
        if len(group) == 1:
            return group[0]
        return SPTree(NodeType.S, tuple(group))

    @staticmethod
    def _wrap_parallel(group: Sequence[SPTree]) -> SPTree:
        if len(group) == 1:
            return group[0]
        return SPTree(NodeType.P, tuple(group))

    def _locate_unique_child(
        self, spec_children: Sequence[SPTree], image: frozenset, where: str
    ) -> int:
        """Index of the unique spec child whose image contains ``image``."""
        hits = [
            index
            for index, child in enumerate(spec_children)
            if image <= self.spec_image(child)
        ]
        if len(hits) == 1:
            return hits[0]
        if not hits:
            raise InvalidRunError(
                f"run subtree with image {sorted(image)} does not fit any "
                f"child of the specification {where} node"
            )
        raise InvalidRunError(
            f"run subtree with image {sorted(image)} is ambiguous among "
            f"{len(hits)} children of the specification {where} node"
        )

    # -- the recursive f'' --------------------------------------------------
    def annotate(self, tg: SPTree, tr: SPTree) -> SPTree:
        handler = {
            NodeType.Q: self._annotate_q,
            NodeType.S: self._annotate_s,
            NodeType.P: self._annotate_p,
            NodeType.F: self._annotate_f,
            NodeType.L: self._annotate_l,
        }[tg.kind]
        return handler(tg, tr)

    def _annotate_q(self, tg: SPTree, tr: SPTree) -> SPTree:
        if tr.kind is not NodeType.Q:
            raise InvalidRunError(
                f"expected a single edge for specification edge "
                f"({tg.source_label!r} -> {tg.sink_label!r}), got a "
                f"{tr.kind} subtree"
            )
        if (tr.source_label, tr.sink_label) != (
            tg.source_label,
            tg.sink_label,
        ):
            raise InvalidRunError(
                f"run edge {tr.source!r} -> {tr.sink!r} does not match "
                f"specification edge ({tg.source_label!r} -> "
                f"{tg.sink_label!r})"
            )
        return SPTree(NodeType.Q, (), edge=tr.edge, origin=tg)

    def _annotate_s(self, tg: SPTree, tr: SPTree) -> SPTree:
        if tr.kind is not NodeType.S:
            raise InvalidRunError(
                "expected a series composition for a specification S node, "
                f"got {tr.kind}"
            )
        groups: List[List[SPTree]] = [[] for _ in tg.children]
        current = 0
        for run_child in tr.children:
            image = self.run_image(run_child)
            index = self._locate_unique_child(tg.children, image, "S")
            if index < current:
                raise InvalidRunError(
                    "run series children are out of specification order"
                )
            current = index
            groups[index].append(run_child)
        for index, group in enumerate(groups):
            if not group:
                raise InvalidRunError(
                    f"series child {index} of the specification was not "
                    "executed by the run"
                )
        children = tuple(
            self.annotate(tg.children[i], self._wrap_series(groups[i]))
            for i in range(len(tg.children))
        )
        return SPTree(NodeType.S, children, origin=tg)

    def _assign_parallel(
        self, tg: SPTree, run_children: Sequence[SPTree]
    ) -> List[List[SPTree]]:
        """Assign run children to spec children of a P node (greedy on ties)."""
        groups: List[List[SPTree]] = [[] for _ in tg.children]
        is_fork = [child.kind is NodeType.F for child in tg.children]
        for run_child in run_children:
            image = self.run_image(run_child)
            hits = [
                index
                for index, child in enumerate(tg.children)
                if image <= self.spec_image(child)
            ]
            if not hits:
                raise InvalidRunError(
                    f"run parallel branch with image {sorted(image)} does "
                    "not fit any branch of the specification P node"
                )
            chosen: Optional[int] = None
            if len(hits) == 1:
                chosen = hits[0]
            else:
                # Multi-edge ambiguity: prefer an unused plain branch, then
                # any fork branch (identical branches, so any choice is ≡).
                for index in hits:
                    if not is_fork[index] and not groups[index]:
                        chosen = index
                        break
                if chosen is None:
                    for index in hits:
                        if is_fork[index]:
                            chosen = index
                            break
            if chosen is None:
                raise InvalidRunError(
                    "too many parallel copies of a non-forked branch"
                )
            if groups[chosen] and not is_fork[chosen]:
                raise InvalidRunError(
                    "multiple parallel copies of a branch that is not "
                    "marked as a fork"
                )
            groups[chosen].append(run_child)
        return groups

    def _annotate_p(self, tg: SPTree, tr: SPTree) -> SPTree:
        if tr.kind is NodeType.P:
            groups = self._assign_parallel(tg, tr.children)
            children = []
            for index, group in enumerate(groups):
                if not group:
                    continue
                children.append(
                    self.annotate(
                        tg.children[index], self._wrap_parallel(group)
                    )
                )
            if not children:
                raise InvalidRunError("parallel node executed no branch")
            return SPTree(NodeType.P, tuple(children), origin=tg)
        # A single branch was taken and it is serial or a single edge.
        image = self.run_image(tr)
        hits = [
            index
            for index, child in enumerate(tg.children)
            if image <= self.spec_image(child)
        ]
        if not hits:
            raise InvalidRunError(
                f"run branch with image {sorted(image)} does not fit any "
                "branch of the specification P node"
            )
        # Multi-edge ambiguity: identical branches — prefer a plain one.
        index = next(
            (i for i in hits if tg.children[i].kind is not NodeType.F),
            hits[0],
        )
        child = self.annotate(tg.children[index], tr)
        return SPTree(NodeType.P, (child,), origin=tg)

    def _annotate_f(self, tg: SPTree, tr: SPTree) -> SPTree:
        body = tg.children[0]
        if tr.kind is NodeType.P:
            copies = tuple(
                self.annotate(body, copy) for copy in tr.children
            )
            return SPTree(NodeType.F, copies, origin=tg)
        return SPTree(NodeType.F, (self.annotate(body, tr),), origin=tg)

    def _annotate_l(self, tg: SPTree, tr: SPTree) -> SPTree:
        body = tg.children[0]
        marker = self.loop_marker_of_node[id(tg)]
        if tr.kind is NodeType.S:
            segments: List[List[SPTree]] = [[]]
            for run_child in tr.children:
                if (
                    run_child.kind is NodeType.Q
                    and self.leaf_marker(run_child) == marker
                ):
                    segments.append([])
                else:
                    segments[-1].append(run_child)
            if any(not segment for segment in segments):
                raise InvalidRunError(
                    "loop iteration with an empty body (dangling implicit "
                    "back-edge)"
                )
            iterations = tuple(
                self.annotate(body, self._wrap_series(segment))
                for segment in segments
            )
            return SPTree(NodeType.L, iterations, origin=tg)
        # Single iteration whose body is parallel or a single edge.
        return SPTree(NodeType.L, (self.annotate(body, tr),), origin=tg)


def annotate_run_tree(spec, run: FlowNetwork) -> SPTree:
    """Build the annotated SP-tree of ``run`` with origins into ``spec.tree``.

    Parameters
    ----------
    spec:
        A :class:`~repro.workflow.specification.WorkflowSpecification`.
    run:
        The run graph (a flow network whose labels are specification
        labels).

    Raises
    ------
    InvalidRunError
        If ``run`` is not a valid run of ``spec`` under the SP-model
        semantics (series/parallel/fork/loop executions).
    """
    check_valid_run(run, spec.graph, spec.allowed_back_edges())
    canonical = canonical_sp_tree(run)
    annotator = _Annotator(spec)
    annotated = annotator.annotate(spec.tree, canonical)
    validate_run_tree(annotated, require_origin=True)
    return annotated


def is_valid_sp_run(spec, run: FlowNetwork) -> bool:
    """True iff ``run`` is a valid SP-model run of ``spec``."""
    try:
        annotate_run_tree(spec, run)
    except InvalidRunError:
        return False
    return True
