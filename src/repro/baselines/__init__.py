"""repro.baselines subpackage."""
