"""The naive dataflow differencing baseline (Section I).

For the plain *dataflow* execution model — the one most Provenance
Challenge systems supported — module names do not repeat within a run, so
two runs of the same specification admit an immediate node pairing by
label.  Differencing then reduces to set difference on nodes and edges.

The paper's point of departure is that this approach breaks down as soon
as forks and loops replicate module instances: label-based pairing becomes
ambiguous and a global matching is required.  :class:`NaiveDiff` exposes
exactly this boundary: ``is_exact`` reports whether the label-pairing
assumption held for the given pair of runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.workflow.run import WorkflowRun


@dataclass
class NaiveDiff:
    """Result of label-based node/edge set differencing.

    Attributes
    ----------
    is_exact:
        True iff labels were unique in both runs, i.e. the naive pairing
        is the (unique) correct one and the counts below are meaningful.
    nodes_only_in_1 / nodes_only_in_2:
        Labels present in exactly one run (counted with multiplicity
        difference when labels repeat).
    edges_only_in_1 / edges_only_in_2:
        Label-pair edges present in exactly one run (multiset difference).
    """

    is_exact: bool
    nodes_only_in_1: List[str]
    nodes_only_in_2: List[str]
    edges_only_in_1: List[Tuple[str, str]]
    edges_only_in_2: List[Tuple[str, str]]

    @property
    def symmetric_difference_size(self) -> int:
        """Total number of differing nodes and edges."""
        return (
            len(self.nodes_only_in_1)
            + len(self.nodes_only_in_2)
            + len(self.edges_only_in_1)
            + len(self.edges_only_in_2)
        )

    @property
    def is_identical(self) -> bool:
        return self.symmetric_difference_size == 0


def _label_multiset(run: WorkflowRun) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for node in run.graph.nodes():
        label = run.graph.label(node)
        counts[label] = counts.get(label, 0) + 1
    return counts


def _edge_multiset(run: WorkflowRun) -> Dict[Tuple[str, str], int]:
    counts: Dict[Tuple[str, str], int] = {}
    for u, v, _ in run.graph.edges():
        pair = (run.graph.label(u), run.graph.label(v))
        counts[pair] = counts.get(pair, 0) + 1
    return counts


def _multiset_minus(left: Dict, right: Dict) -> List:
    result = []
    for key, count in left.items():
        extra = count - right.get(key, 0)
        result.extend([key] * max(0, extra))
    return sorted(result)


def naive_diff(run1: WorkflowRun, run2: WorkflowRun) -> NaiveDiff:
    """Label-based set differencing of two runs (the dataflow baseline)."""
    labels1 = _label_multiset(run1)
    labels2 = _label_multiset(run2)
    edges1 = _edge_multiset(run1)
    edges2 = _edge_multiset(run2)
    is_exact = all(count == 1 for count in labels1.values()) and all(
        count == 1 for count in labels2.values()
    )
    return NaiveDiff(
        is_exact=is_exact,
        nodes_only_in_1=_multiset_minus(labels1, labels2),
        nodes_only_in_2=_multiset_minus(labels2, labels1),
        edges_only_in_1=_multiset_minus(edges1, edges2),
        edges_only_in_2=_multiset_minus(edges2, edges1),
    )
