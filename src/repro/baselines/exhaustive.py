"""Exact brute-force differencing — the test oracle for Algorithm 4.

The edit distance has a clean semantics: the shortest path between the two
runs in the (infinite) graph whose vertices are all valid runs of the
specification and whose edges are single elementary path operations
(Section III-C).  This module searches that space directly with Dijkstra's
algorithm, merging runs up to ``≡`` (instance renaming / P-F reorder).

This is exponential and only usable on small instances, but it makes no
use of the SP-tree DP machinery beyond tree construction — an independent
implementation of the *definition* — which makes it the strongest oracle
for the polynomial algorithm in the test suite.

Successor generation:

* **deletions/contractions** — any subtree that is branch-free with a true
  P/F/L parent (i.e. any elementary subtree, Definition 4.1);
* **insertions/expansions** — any branch-free run of a specification
  subtree attached under a P node (absent branches only), an F node (any
  number of copies), or an L node (at every iteration position).

Search is bounded by a leaf budget and a state cap to stay finite.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.apply import IdAllocator, MirrorFreezer, MNode, build_mirror
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError
from repro.sptree.nodes import NodeType, SPTree
from repro.workflow.run import WorkflowRun


def enumerate_branch_free_fragments(
    spec_node: SPTree, limit: int = 64
) -> List[MNode]:
    """All distinct branch-free runs of ``TG[spec_node]`` (as mirrors).

    Enumerates every source-sink path shape: P nodes pick one branch,
    F and L nodes execute once.  Capped at ``limit`` fragments.
    """

    def build(node: SPTree) -> List[MNode]:
        if node.kind is NodeType.Q:
            return [
                MNode(
                    NodeType.Q,
                    node,
                    node.source_label,
                    node.sink_label,
                )
            ]
        if node.kind is NodeType.S:
            options = [build(child) for child in node.children]
            results: List[MNode] = []
            for combo in itertools.product(*options):
                wrapper = MNode(
                    NodeType.S, node, node.source_label, node.sink_label
                )
                for part in combo:
                    wrapper.attach(_clone(part))
                results.append(wrapper)
                if len(results) >= limit:
                    break
            return results
        if node.kind is NodeType.P:
            results = []
            for child in node.children:
                for inner in build(child):
                    wrapper = MNode(
                        NodeType.P, node, node.source_label, node.sink_label
                    )
                    wrapper.attach(inner)
                    results.append(wrapper)
                    if len(results) >= limit:
                        return results
            return results
        # F or L: single copy / iteration.
        results = []
        for inner in build(node.children[0]):
            wrapper = MNode(
                node.kind, node, node.source_label, node.sink_label
            )
            wrapper.attach(inner)
            results.append(wrapper)
            if len(results) >= limit:
                break
        return results

    return build(spec_node)


def _clone(node: MNode) -> MNode:
    copy = MNode(
        node.kind,
        node.origin,
        node.source_label,
        node.sink_label,
        pref_source=node.pref_source,
        pref_sink=node.pref_sink,
    )
    for child in node.children:
        copy.attach(_clone(child))
    return copy


def _freeze(root: MNode) -> SPTree:
    freezer = MirrorFreezer(IdAllocator())
    allocator = IdAllocator()
    source = allocator.fresh(root.source_label)
    sink = allocator.fresh(root.sink_label)
    return freezer.freeze(root, source, sink)


def _successors(
    tree: SPTree, cost: CostModel
) -> Iterator[Tuple[float, SPTree]]:
    nodes = list(tree.iter_nodes("pre"))
    parents: Dict[int, SPTree] = {}
    for node in nodes:
        for child in node.children:
            parents[id(child)] = node

    # Deletions / contractions.
    for node in nodes:
        parent = parents.get(id(node))
        if parent is None or parent.kind not in (
            NodeType.P,
            NodeType.F,
            NodeType.L,
        ):
            continue
        if not parent.is_true or not node.is_branch_free:
            continue
        operation_cost = cost.path_cost(
            node.leaf_count, node.source_label, node.sink_label
        )
        root, registry = build_mirror(tree)
        registry[id(node)].detach()
        yield operation_cost, _freeze(root)

    # Insertions / expansions.
    for node in nodes:
        if node.kind is NodeType.P:
            present = {id(child.origin) for child in node.children}
            for spec_child in node.origin.children:
                if id(spec_child) in present:
                    continue
                for fragment in enumerate_branch_free_fragments(spec_child):
                    operation_cost = cost.path_cost(
                        fragment.leaf_count(),
                        fragment.source_label,
                        fragment.sink_label,
                    )
                    root, registry = build_mirror(tree)
                    registry[id(node)].attach(_clone(fragment))
                    yield operation_cost, _freeze(root)
        elif node.kind is NodeType.F:
            body = node.origin.children[0]
            for fragment in enumerate_branch_free_fragments(body):
                operation_cost = cost.path_cost(
                    fragment.leaf_count(),
                    fragment.source_label,
                    fragment.sink_label,
                )
                root, registry = build_mirror(tree)
                registry[id(node)].attach(_clone(fragment))
                yield operation_cost, _freeze(root)
        elif node.kind is NodeType.L:
            body = node.origin.children[0]
            for fragment in enumerate_branch_free_fragments(body):
                operation_cost = cost.path_cost(
                    fragment.leaf_count(),
                    fragment.source_label,
                    fragment.sink_label,
                )
                for position in range(node.degree + 1):
                    root, registry = build_mirror(tree)
                    registry[id(node)].attach(_clone(fragment), position)
                    yield operation_cost, _freeze(root)


def exact_edit_distance(
    run1: WorkflowRun,
    run2: WorkflowRun,
    cost: Optional[CostModel] = None,
    extra_leaves: int = 3,
    max_states: int = 200_000,
) -> float:
    """Dijkstra over the space of valid runs (exponential; small inputs).

    Parameters
    ----------
    extra_leaves:
        Leaf budget beyond ``max(|run1|, |run2|)``; intermediate runs
        larger than this are pruned.  The paper's edit scripts never need
        to grow beyond the larger run by more than one temporary branch,
        so small budgets are safe for verification.
    max_states:
        Hard cap on settled states; exceeding it raises
        :class:`ReproError` (instance too large for the oracle).
    """
    cost = cost or UnitCost()
    goal = run2.tree.structure_key()
    start_tree = run1.tree
    start_key = start_tree.structure_key()
    if start_key == goal:
        return 0.0
    budget = max(run1.tree.leaf_count, run2.tree.leaf_count) + extra_leaves

    counter = itertools.count()
    heap: List[Tuple[float, int, SPTree]] = [(0.0, next(counter), start_tree)]
    best: Dict[object, float] = {start_key: 0.0}
    settled = 0
    while heap:
        distance, _, tree = heapq.heappop(heap)
        key = tree.structure_key()
        if distance > best.get(key, float("inf")) + 1e-12:
            continue
        if key == goal:
            return distance
        settled += 1
        if settled > max_states:
            raise ReproError(
                "exhaustive search exceeded the state cap; instance too "
                "large for the oracle"
            )
        for operation_cost, successor in _successors(tree, cost):
            if successor.leaf_count > budget:
                continue
            successor_key = successor.structure_key()
            candidate = distance + operation_cost
            if candidate < best.get(successor_key, float("inf")) - 1e-12:
                best[successor_key] = candidate
                heapq.heappush(heap, (candidate, next(counter), successor))
    raise ReproError("exhaustive search did not reach the target run")
