"""Data-difference annotations over a control-flow diff (Section I).

Once the control-flow matching between two runs is computed, the
provenance layer highlights *data* differences as annotations:

* on matched **nodes** — module invocations whose parameter settings
  differ between the runs;
* on matched **edges** — data products whose content digests differ.

This realises the paper's remark that data "can be highlighted as
annotations on nodes (for parameter settings) and edges (for data flowing
between modules)" on top of the structural mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.api import DiffResult
from repro.provenance.records import ProvenanceDocument
from repro.sptree.nodes import NodeType


@dataclass
class ParameterAnnotation:
    """A matched module pair with differing parameter settings."""

    node1: object
    node2: object
    module: str
    changed: List[Tuple[str, object, object]]  # (name, value1, value2)


@dataclass
class DataAnnotation:
    """A matched edge pair whose data products differ."""

    edge1: Tuple[object, object, int]
    edge2: Tuple[object, object, int]
    digest1: str
    digest2: str


@dataclass
class ProvenanceDiff:
    """Structural diff enriched with parameter/data annotations."""

    parameter_annotations: List[ParameterAnnotation]
    data_annotations: List[DataAnnotation]
    unmatched_invocations_1: List[object]
    unmatched_invocations_2: List[object]

    @property
    def num_parameter_changes(self) -> int:
        return len(self.parameter_annotations)

    @property
    def num_data_changes(self) -> int:
        return len(self.data_annotations)


def annotate_data_differences(
    diff: DiffResult,
    provenance1: ProvenanceDocument,
    provenance2: ProvenanceDocument,
) -> ProvenanceDiff:
    """Attach parameter/data annotations to a structural diff."""
    correspondence = diff.correspondence()

    parameter_annotations: List[ParameterAnnotation] = []
    for node1, node2 in sorted(
        correspondence.matched.items(), key=lambda item: str(item[0])
    ):
        invocation1 = provenance1.invocation(node1)
        invocation2 = provenance2.invocation(node2)
        if invocation1 is None or invocation2 is None:
            continue
        params1 = invocation1.parameter_dict()
        params2 = invocation2.parameter_dict()
        changed = [
            (name, params1[name], params2[name])
            for name in sorted(set(params1) | set(params2))
            if params1.get(name) != params2.get(name)
        ]
        if changed:
            parameter_annotations.append(
                ParameterAnnotation(
                    node1=node1,
                    node2=node2,
                    module=invocation1.module,
                    changed=changed,
                )
            )

    # Edge matches come from mapped Q pairs of the tree mapping.
    data_annotations: List[DataAnnotation] = []
    for pair in diff.mapping.pairs:
        if pair.left.kind is not NodeType.Q:
            continue
        edge1 = (pair.left.edge.source, pair.left.edge.sink, pair.left.edge.key)
        edge2 = (
            pair.right.edge.source,
            pair.right.edge.sink,
            pair.right.edge.key,
        )
        product1 = provenance1.product(edge1)
        product2 = provenance2.product(edge2)
        if product1 is None or product2 is None:
            continue
        if product1.content_digest != product2.content_digest:
            data_annotations.append(
                DataAnnotation(
                    edge1=edge1,
                    edge2=edge2,
                    digest1=product1.content_digest,
                    digest2=product2.content_digest,
                )
            )

    return ProvenanceDiff(
        parameter_annotations=parameter_annotations,
        data_annotations=data_annotations,
        unmatched_invocations_1=list(correspondence.left_only),
        unmatched_invocations_2=list(correspondence.right_only),
    )
