"""Provenance records: module invocations and data products.

The paper's motivation (Section I) is differencing the *provenance* of
data products: a run's control structure plus the parameter settings of
each module invocation and the data flowing between them.  The paper
focuses on control flow and notes that, once the matching is computed,
data differences can be highlighted as annotations on matched nodes
(parameters) and edges (data products).

These records model that data layer: one :class:`ModuleInvocation` per run
node and one :class:`DataProduct` per run edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class DataProduct:
    """A data item produced on a run edge.

    Attributes
    ----------
    product_id:
        Unique identifier within the run.
    content_digest:
        A stand-in for the data's content (hash/fingerprint); two products
        with equal digests are considered the same data.
    size:
        Nominal size (bytes) — used by PDiffView summaries.
    """

    product_id: str
    content_digest: str
    size: int = 0


@dataclass(frozen=True)
class ModuleInvocation:
    """One execution of a module (a run node).

    Attributes
    ----------
    node:
        The run-graph node id (e.g. ``"3b"``).
    module:
        The specification label (module name).
    parameters:
        The parameter settings used by this invocation.
    started_at / duration:
        Nominal timing (simulation clock units).
    """

    node: object
    module: str
    parameters: Tuple[Tuple[str, object], ...]
    started_at: float = 0.0
    duration: float = 0.0

    def parameter_dict(self) -> Dict[str, object]:
        return dict(self.parameters)


@dataclass
class ProvenanceDocument:
    """The full provenance of one run: invocations plus data products."""

    run_name: str
    invocations: Dict[object, ModuleInvocation] = field(default_factory=dict)
    products: Dict[Tuple[object, object, int], DataProduct] = field(
        default_factory=dict
    )

    def invocation(self, node) -> Optional[ModuleInvocation]:
        return self.invocations.get(node)

    def product(self, edge) -> Optional[DataProduct]:
        return self.products.get(edge)

    @property
    def num_invocations(self) -> int:
        return len(self.invocations)

    @property
    def num_products(self) -> int:
        return len(self.products)
