"""Simulated provenance capture for workflow runs.

Real workflow engines record, per module invocation, the parameter
settings used and the data products exchanged.  We have no proprietary
engine traces, so this module *simulates* capture deterministically from a
seed: each module has a parameter schema derived from its label, each
invocation samples concrete values, and each data product's digest is a
hash of its producing invocation's parameters and inputs — so re-running
with equal parameters yields equal data, and a changed parameter
propagates new digests downstream, just like real provenance.

(DESIGN.md §5 documents this substitution; the differencing algorithms
only consume the resulting annotations.)
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Tuple

from repro.provenance.records import (
    DataProduct,
    ModuleInvocation,
    ProvenanceDocument,
)
from repro.workflow.run import WorkflowRun


def _parameter_schema(module: str) -> List[str]:
    """Deterministic per-module parameter names (3 knobs per module)."""
    digest = hashlib.sha256(module.encode("utf8")).hexdigest()
    return [f"{module}.p{digest[i]}" for i in (0, 1, 2)]


def _digest(*parts: object) -> str:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode("utf8"))
    return hasher.hexdigest()[:16]


def capture_provenance(
    run: WorkflowRun,
    seed: Optional[int] = None,
    parameter_drift: float = 0.0,
) -> ProvenanceDocument:
    """Simulate provenance capture for ``run``.

    Parameters
    ----------
    seed:
        Seeds the parameter sampling; two captures with the same seed and
        ``parameter_drift = 0`` produce identical parameters for matching
        module instances.
    parameter_drift:
        Probability that each parameter deviates from its seed-default —
        the knob used to study data-difference annotations.
    """
    rng = random.Random(seed)
    document = ProvenanceDocument(run_name=run.name)

    clock = 0.0
    order = run.graph.topological_order()
    for node in order:
        module = run.graph.label(node)
        names = _parameter_schema(module)
        values = []
        for name in names:
            base = _digest("default", name)
            if parameter_drift > 0 and rng.random() < parameter_drift:
                value = _digest(base, rng.random())
            else:
                value = base
            values.append((name, value))
        duration = 1.0 + (hash(module) % 7) / 10.0
        document.invocations[node] = ModuleInvocation(
            node=node,
            module=module,
            parameters=tuple(values),
            started_at=clock,
            duration=duration,
        )
        clock += duration

    # Data products: digest = hash(producer parameters + input digests).
    input_digests: Dict[object, List[str]] = {n: [] for n in order}
    for node in order:
        invocation = document.invocations[node]
        for edge in run.graph.out_edges(node):
            digest = _digest(
                invocation.parameters, tuple(sorted(input_digests[node]))
            )
            product = DataProduct(
                product_id=f"d:{edge[0]}->{edge[1]}#{edge[2]}",
                content_digest=digest,
                size=64 + (hash(digest) % 4096),
            )
            document.products[edge] = product
            input_digests[edge[1]].append(digest)
    return document
