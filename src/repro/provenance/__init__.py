"""repro.provenance subpackage."""
