"""Checking the metric axioms of a cost model (Section III-C.2).

The quadrangle inequality (Fig. 4) is a property of a cost model *relative
to a specification*: it quantifies over label tuples ``A, B, C, D`` and
lengths for which the specification actually contains elementary paths.
:func:`check_quadrangle_on_spec` enumerates (or samples) such tuples and
verifies

``γ(l1+l2+l3, A, D) <= γ(l1+l2'+l3, A, D) + γ(l2, B, C) + γ(l2', B, C)``.

The generic :func:`check_metric_axioms` verifies non-negativity, identity
and the label-free quadrangle inequality over a grid of lengths, which is
sufficient for label-independent models such as the power family.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.costs.base import CostModel
from repro.errors import CostModelError

_TOLERANCE = 1e-9


def check_metric_axioms(
    cost: CostModel,
    lengths: Sequence[int] = tuple(range(1, 12)),
    labels: Sequence[str] = ("A", "B"),
) -> None:
    """Verify axioms 1-2 and the label-free quadrangle inequality.

    Raises :class:`CostModelError` with a counterexample on failure.
    """
    for length in lengths:
        for a, b in itertools.product(labels, repeat=2):
            if length == 0 and a != b:
                continue
            value = cost.path_cost(length, a, b)
            if value < -_TOLERANCE:
                raise CostModelError(
                    f"non-negativity violated: γ({length}, {a!r}, {b!r}) = "
                    f"{value}"
                )
            if length > 0 and value <= _TOLERANCE:
                raise CostModelError(
                    f"identity violated: γ({length}, {a!r}, {b!r}) = {value} "
                    "but the path is non-empty"
                )
    a = labels[0]
    for l1, l2, l2p, l3 in itertools.product(lengths, repeat=4):
        lhs = cost.path_cost(l1 + l2 + l3, a, a)
        rhs = (
            cost.path_cost(l1 + l2p + l3, a, a)
            + cost.path_cost(l2, a, a)
            + cost.path_cost(l2p, a, a)
        )
        if lhs > rhs + _TOLERANCE:
            raise CostModelError(
                "quadrangle inequality violated for lengths "
                f"(l1={l1}, l2={l2}, l2'={l2p}, l3={l3}): {lhs} > {rhs}"
            )


def _elementary_path_profiles(spec) -> List[Tuple[str, str, int]]:
    """(source_label, sink_label, length) of branch-free runs per node.

    For every P-branch and fork/loop body of the specification tree this
    lists the achievable elementary path lengths (up to a size cap) —
    exactly the paths edit operations can touch.
    """
    from repro.core.spec_costs import achievable_leaf_counts

    profiles: List[Tuple[str, str, int]] = []
    for node in spec.tree.iter_nodes("pre"):
        counts = achievable_leaf_counts(node)
        for length in counts:
            profiles.append((node.source_label, node.sink_label, length))
    return profiles


def check_quadrangle_on_spec(
    cost: CostModel,
    spec,
    samples: int = 2000,
    seed: Optional[int] = 7,
) -> None:
    """Sample quadrangle-inequality instances induced by ``spec``.

    Pairs of alternative middles ``p2, p2'`` share a (P-branch or fork
    body) terminal pair; prefixes/suffixes are drawn from the achievable
    path-length profiles.  Raises :class:`CostModelError` with the violating
    tuple.
    """
    profiles = _elementary_path_profiles(spec)
    if not profiles:
        return
    by_pair = {}
    for source_label, sink_label, length in profiles:
        by_pair.setdefault((source_label, sink_label), set()).add(length)
    alternative_pairs = [
        (pair, sorted(lengths))
        for pair, lengths in by_pair.items()
        if len(lengths) >= 1
    ]
    rng = random.Random(seed)
    all_lengths = sorted({length for _, _, length in profiles})
    for _ in range(samples):
        (b_label, c_label), lengths = rng.choice(alternative_pairs)
        l2 = rng.choice(lengths)
        l2p = rng.choice(lengths)
        l1 = rng.choice([0] + all_lengths)
        l3 = rng.choice([0] + all_lengths)
        a_label = b_label if l1 == 0 else rng.choice(profiles)[0]
        d_label = c_label if l3 == 0 else rng.choice(profiles)[1]
        lhs = cost.path_cost(l1 + l2 + l3, a_label, d_label)
        rhs = (
            cost.path_cost(l1 + l2p + l3, a_label, d_label)
            + cost.path_cost(l2, b_label, c_label)
            + cost.path_cost(l2p, b_label, c_label)
        )
        if lhs > rhs + _TOLERANCE:
            raise CostModelError(
                "quadrangle inequality violated on specification "
                f"{spec.name!r}: γ({l1}+{l2}+{l3}, {a_label!r}, {d_label!r})"
                f" = {lhs} > {rhs}"
            )
