"""Standard cost models: the sublinear power family and variants.

The paper's evaluation (Section VIII-D) uses ``γ(l) = l^ε`` with ``ε <= 1``:

* ``ε = 0`` — the **unit** cost model (every operation costs one);
* ``ε = 1`` — the **length** cost model (cost equals path length);
* ``0 < ε < 1`` — concave intermediates trading the two off;
* ``ε < 0`` — decreasing costs (longer paths are cheaper), also admissible.

All power costs satisfy the metric axioms: subadditivity of ``l^ε`` for
``0 <= ε <= 1`` yields the quadrangle inequality, and for ``ε < 0`` the
inequality holds because ``γ`` is non-increasing in ``l``.

:class:`LabelWeightedCost` scales a base model per terminal-label pair,
capturing application-specific "module importance"; the weights must be
checked against the quadrangle inequality for the concrete specification
(see :mod:`repro.costs.validation`).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.costs.base import CostModel
from repro.errors import CostModelError


class PowerCost(CostModel):
    """``γ(l, A, B) = l^ε`` for ``ε <= 1`` (zero-length paths cost 0)."""

    def __init__(self, epsilon: float):
        if epsilon > 1:
            raise CostModelError(
                f"power cost requires ε <= 1 for the quadrangle inequality, "
                f"got {epsilon}"
            )
        self.epsilon = float(epsilon)

    def path_cost(self, length: int, source_label: str, sink_label: str) -> float:
        self.validate_arguments(length, source_label, sink_label)
        if length == 0:
            return 0.0
        return float(length) ** self.epsilon

    @property
    def name(self) -> str:
        return f"PowerCost(ε={self.epsilon:g})"

    @property
    def cache_key(self):
        # ε is the whole parameterisation.  repr() keeps full float
        # precision — the :g display name would collide epsilons that
        # differ beyond six significant digits.
        return f"PowerCost(ε={self.epsilon!r})"


class UnitCost(PowerCost):
    """The unit cost model (``ε = 0``): every edit operation costs one."""

    def __init__(self):
        super().__init__(0.0)

    @property
    def name(self) -> str:
        return "UnitCost"


class LengthCost(PowerCost):
    """The length cost model (``ε = 1``): cost equals the path length."""

    def __init__(self):
        super().__init__(1.0)

    @property
    def name(self) -> str:
        return "LengthCost"


class LabelWeightedCost(CostModel):
    """A base model scaled per terminal-label pair.

    Parameters
    ----------
    base:
        The underlying :class:`CostModel` (typically a :class:`PowerCost`).
    weights:
        Mapping ``(source_label, sink_label) -> multiplier``; missing pairs
        use ``default_weight``.  All weights must be positive.

    Notes
    -----
    Arbitrary weights can violate the quadrangle inequality; validate the
    combination against a specification with
    :func:`repro.costs.validation.check_quadrangle_on_spec` before use.
    """

    def __init__(
        self,
        base: CostModel,
        weights: Dict[Tuple[str, str], float],
        default_weight: float = 1.0,
    ):
        if default_weight <= 0:
            raise CostModelError("default_weight must be positive")
        for pair, weight in weights.items():
            if weight <= 0:
                raise CostModelError(
                    f"weight for {pair!r} must be positive, got {weight}"
                )
        self.base = base
        self.weights = dict(weights)
        self.default_weight = default_weight

    def path_cost(self, length: int, source_label: str, sink_label: str) -> float:
        weight = self.weights.get(
            (source_label, sink_label), self.default_weight
        )
        return weight * self.base.path_cost(length, source_label, sink_label)

    @property
    def name(self) -> str:
        return f"LabelWeighted({self.base.name})"

    @property
    def cache_key(self):
        base_key = self.base.cache_key
        if base_key is None:
            return None
        # repr() of the canonical tuple quotes/escapes labels, so no
        # label content can collide with the delimiters.
        weights = repr(tuple(sorted(self.weights.items())))
        return (
            f"LabelWeighted({base_key};default={self.default_weight!r};"
            f"{weights})"
        )


class CallableCost(CostModel):
    """Adapter turning a plain function ``f(l, A, B) -> float`` into a model.

    Intended for experimentation; the caller is responsible for the metric
    axioms (use :mod:`repro.costs.validation`).
    """

    def __init__(self, func: Callable[[int, str, str], float], name: str = ""):
        self._func = func
        self._name = name or getattr(func, "__name__", "CallableCost")

    def path_cost(self, length: int, source_label: str, sink_label: str) -> float:
        value = float(self._func(length, source_label, sink_label))
        if value < 0:
            raise CostModelError(
                f"cost function returned a negative value {value} for "
                f"({length}, {source_label!r}, {sink_label!r})"
            )
        return value

    @property
    def name(self) -> str:
        return self._name

    @property
    def cache_key(self):
        # An arbitrary callable has no stable serialisable identity; two
        # instances sharing a name may price paths differently, so never
        # cache distances computed under one.
        return None


# -- wire specs ---------------------------------------------------------
def cost_from_spec(text: str) -> CostModel:
    """Parse a cost-model spec string: ``unit``, ``length``, ``power:E``.

    The textual cost-model grammar shared by the CLI ``--cost`` flag and
    the HTTP service's ``cost=`` parameter.  Raises
    :class:`~repro.errors.CostModelError` on anything else, including a
    non-numeric epsilon.
    """
    lowered = str(text).strip().lower()
    if lowered == "unit":
        return UnitCost()
    if lowered == "length":
        return LengthCost()
    if lowered.startswith("power:"):
        try:
            return PowerCost(float(lowered.split(":", 1)[1]))
        except ValueError:
            raise CostModelError(
                f"invalid power-cost epsilon in {text!r}"
            ) from None
    raise CostModelError(
        f"unknown cost model {text!r} (expected unit, length, or power:E)"
    )


def cost_to_spec(cost: CostModel) -> str:
    """The spec string :func:`cost_from_spec` rebuilds ``cost`` from.

    Only the power family travels over the wire; weighted and callable
    models have no portable serialisation, so a remote client refuses
    them with :class:`~repro.errors.CostModelError` instead of silently
    pricing with a different model on the server.
    """
    if isinstance(cost, UnitCost):
        return "unit"
    if isinstance(cost, LengthCost):
        return "length"
    if isinstance(cost, PowerCost):
        # repr() keeps full float precision (mirrors PowerCost.cache_key)
        return f"power:{cost.epsilon!r}"
    raise CostModelError(
        f"cost model {cost.name} is not wire-serialisable "
        "(only unit, length, and power:E travel to a remote workspace)"
    )
