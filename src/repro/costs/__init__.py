"""repro.costs subpackage."""
