"""Cost-model framework (Section III-C.2).

The cost of an edit operation is ``γ(Λ -> p) = γ(|p|, Label(s(p)),
Label(t(p)))`` — a function of the elementary path's length and the labels
of its two terminals (Eq. 1).  ``γ`` must be a distance metric with respect
to elementary path insertions/deletions:

1. non-negativity,
2. identity (``γ = 0`` iff the path is empty with coinciding terminals),
3. symmetry (insertion and deletion cost the same), and
4. the quadrangle inequality (Fig. 4), which guarantees that minimum-cost
   subtree deletions never need insertions (Lemma 5.7).

Via Lemma 4.6 the same function prices subtree operations:
``γ(Λ -> T[v]) = γ(|Leaf(T[v])|, s(v), t(v))``.
"""

from __future__ import annotations

import abc

from repro.errors import CostModelError
from repro.sptree.nodes import SPTree


class CostModel(abc.ABC):
    """Abstract cost model ``γ(l, A, B)``.

    Subclasses implement :meth:`path_cost`; all derived prices (subtree
    operations, edit scripts) are provided here.
    """

    @abc.abstractmethod
    def path_cost(self, length: int, source_label: str, sink_label: str) -> float:
        """Cost of inserting (= deleting) an elementary path.

        ``length`` is the number of edges ``|p|``; ``source_label`` and
        ``sink_label`` are the specification labels of the path terminals.
        """

    def subtree_cost(self, node: SPTree) -> float:
        """``γ(Λ -> T[v])`` for an elementary subtree (Lemma 4.6)."""
        return self.path_cost(
            node.leaf_count, node.source_label, node.sink_label
        )

    def validate_arguments(
        self, length: int, source_label: str, sink_label: str
    ) -> None:
        """Shared argument checking for concrete models."""
        if length < 0:
            raise CostModelError(f"path length must be >= 0, got {length}")
        if length == 0 and source_label != sink_label:
            raise CostModelError(
                "a zero-length path must have coinciding terminals"
            )

    @property
    def name(self) -> str:
        """Display name (benchmarks key their tables on this)."""
        return type(self).__name__

    @property
    def cache_key(self):
        """Stable identity string used to key persisted distance caches.

        Two model instances with equal ``cache_key`` must price every
        path identically — the contract the corpus distance cache relies
        on.  Caching is **opt-in**: the default is ``None`` (never
        cache), because a parameterised subclass that forgot to encode
        its parameters here would silently poison a persistent cache.
        Subclasses whose :attr:`name` encodes every parameter (as the
        standard power family's does) may simply return ``self.name``.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name
