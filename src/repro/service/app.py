"""The diff service's request router: resource routes over a workspace.

Framework-free by design: an :class:`HttpRequest` goes in, an
:class:`HttpResponse` comes out, and the stdlib server in
:mod:`repro.service.server` (or any test) drives the app without a
socket.  Routes mirror the :class:`~repro.api_types.WorkspaceAPI`
surface:

========  ==========================  =====================================
method    path                        meaning
========  ==========================  =====================================
GET       ``/healthz``                liveness + version
GET       ``/stats``                  service counters (StatsSnapshot)
GET       ``/specs``                  list specification names
GET       ``/specs/{name}``           spec summary (XML via ``Accept``)
PUT       ``/specs/{name}``           register a specification (XML body)
GET       ``/runs?spec=``             list run names of a specification
GET       ``/runs/{name}?spec=``      run summary (PROV-JSON via ``Accept``)
PUT       ``/runs/{name}?spec=``      import a run (PROV-JSON body)
GET       ``/diff/{a}/{b}?spec&cost`` priced diff (DiffOutcome, ETag'd)
POST      ``/matrix``                 all-pairs distances (MatrixResult)
POST      ``/query``                  paged query (QueryFilter → QueryPage)
POST      ``/prov/import``            ingest a PROV document (ImportSummary)
POST      ``/stream/events``          streaming ingestion batch (StreamAck)
GET       ``/stream/live``            open streaming sessions (LiveStatus)
========  ==========================  =====================================

Path segments are percent-decoded, so names containing ``/`` and other
reserved characters round-trip.  Content negotiation: ``GET /runs/{n}``
returns PROV-JSON when the ``Accept`` header asks for
``application/prov+json``, ``GET /specs/{n}`` returns the catalog XML
for ``application/xml``.

Diff reads are **ETag-revalidated against the corpus fingerprint
index**: the tag digests ``(fingerprint_a, fingerprint_b, cost key)``,
so a client's ``If-None-Match`` costs the server two index ``stat``
calls — no XML parse, no DP — and a ``304 Not Modified`` round trip
when the runs are unchanged.  Misses are answered from the persistent
script cache through the ordinary service path, so repeated diff
requests never recompute.

Every failure leaves as a structured
:class:`~repro.api_types.ErrorEnvelope` (404 unknown run/spec, 409
conflicting specification, 400 malformed input, 500 with a generic
message — never a traceback).
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional
from urllib.parse import unquote

from repro.api_types import (
    ErrorEnvelope,
    ImportSummary,
    QueryFilter,
    WIRE_VERSION,
)
from repro.corpus.fingerprint import cost_model_key, script_key
from repro.costs.standard import cost_from_spec
from repro.errors import NotFoundError, ReproError
from repro.io.xml_io import specification_from_xml, specification_to_xml
from repro.obs.logging import (
    bound_request_id,
    current_request_id,
    new_request_id,
)
from repro.workspace import Workspace

#: Content types the service speaks.
JSON_TYPE = "application/json"
PROV_JSON_TYPE = "application/prov+json"
XML_TYPE = "application/xml"

#: Content type of the Prometheus text exposition face of ``/metrics``.
PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Content type of NDJSON event batches on ``POST /stream/events``.
NDJSON_TYPE = "application/x-ndjson"

#: Correlation header: honoured inbound, always present outbound.
REQUEST_ID_HEADER = "X-Request-Id"


def _package_version() -> str:
    """The installed package version (lazy: avoids a circular import)."""
    import repro

    return repro.__version__


@dataclass
class HttpRequest:
    """One parsed HTTP request, transport-independent."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)  #: lower-cased keys
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        """A header value by case-insensitive name."""
        return self.headers.get(name.lower(), default)

    @property
    def segments(self) -> List[str]:
        """Percent-decoded, non-empty path segments."""
        return [
            unquote(part)
            for part in self.path.split("/")
            if part != ""
        ]

    def json_body(self) -> Any:
        """The request body parsed as JSON (``{}`` when empty).

        Raises :class:`ReproError` (→ 400) on malformed JSON.
        """
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ReproError(
                f"request body is not valid JSON: {exc}"
            ) from None


@dataclass
class HttpResponse:
    """One response: status, body, and headers to put on the wire."""

    status: int = 200
    body: bytes = b""
    content_type: str = JSON_TYPE
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        """A JSON response with deterministic (sorted-key) encoding."""
        return cls(
            status=status,
            body=(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            ).encode("utf8"),
            content_type=JSON_TYPE,
            headers=dict(headers or {}),
        )

    @classmethod
    def text(
        cls,
        text: str,
        content_type: str,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "HttpResponse":
        """A response carrying pre-serialised text of a given type."""
        return cls(
            status=status,
            body=text.encode("utf8"),
            content_type=content_type,
            headers=dict(headers or {}),
        )

    def json_payload(self) -> Any:
        """Decode the body as JSON (test convenience)."""
        return json.loads(self.body.decode("utf8"))


def _run_list(value, what: str) -> Optional[List[str]]:
    """Validate an optional ``runs`` body member: a list of names."""
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(name, str) for name in value
    ):
        raise ReproError(
            f"{what} 'runs' must be a list of run names"
        )
    return value


def _error_response(envelope: ErrorEnvelope) -> HttpResponse:
    """The wire form of a structured error."""
    return HttpResponse.json(envelope.to_dict(), status=envelope.status)


def _status_error(message: str, status: int) -> HttpResponse:
    """A routing-level error (unknown route, wrong method, ...)."""
    return _error_response(
        ErrorEnvelope(
            type=(
                "NotFoundError" if status == 404 else "ReproError"
            ),
            message=message,
            status=status,
            request_id=current_request_id(),
        )
    )


class WorkspaceApp:
    """Routes HTTP requests onto one :class:`Workspace`.

    The workspace's own concurrency discipline (the corpus service
    monitor plus per-cache locks) makes the app safe to drive from the
    threading server's one-thread-per-request model without further
    coordination; the app itself keeps only trivial counters.
    """

    def __init__(self, workspace: Workspace):
        self.workspace = workspace
        #: Request counters surfaced under ``/stats`` (``server_*``).
        #: Guarded by ``_counter_lock`` — the threading server drives
        #: one thread per request, and ``+= 1`` alone is not atomic.
        self.requests = 0
        self.not_modified = 0
        self.errors = 0
        self._in_flight = 0
        self._counter_lock = threading.Lock()
        metrics = workspace.metrics
        self._requests_metric = metrics.counter(
            "server_requests_total",
            "HTTP requests handled, by route, method and status.",
        )
        self._latency_metric = metrics.histogram(
            "server_request_seconds",
            "HTTP request handling latency in seconds, by route.",
        )
        self._errors_metric = metrics.counter(
            "server_errors_total",
            "Requests that left as error envelopes, by error type.",
        )
        self._not_modified_metric = metrics.counter(
            "server_not_modified_total",
            "Diff reads answered by ETag revalidation (304).",
        )
        metrics.gauge(
            "server_in_flight",
            "Requests currently being handled.",
        ).set_function(self.in_flight)
        # Touch the streaming hub so its ``stream_*`` metric families
        # exist (at zero) from the first scrape, not from the first
        # streamed event.
        workspace.stream_hub

    # -- in-flight accounting -------------------------------------------
    def begin_request(self) -> None:
        """Mark one request in flight (the transport calls this)."""
        with self._counter_lock:
            self._in_flight += 1

    def end_request(self) -> None:
        """The paired decrement — called after the response is written."""
        with self._counter_lock:
            self._in_flight -= 1

    def in_flight(self) -> int:
        """Requests currently between begin/end (drain watches this)."""
        with self._counter_lock:
            return self._in_flight

    # -- entry point ----------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Dispatch one request; every failure becomes an envelope.

        Every request runs under a bound correlation ID — honoured from
        an inbound ``X-Request-Id`` header, freshly minted otherwise —
        which the response echoes back, every log record carries, and
        every error envelope embeds.
        """
        request_id = (
            request.header(REQUEST_ID_HEADER).strip() or new_request_id()
        )
        with bound_request_id(request_id):
            response = self._handle_bound(request)
        response.headers.setdefault(REQUEST_ID_HEADER, request_id)
        return response

    def _handle_bound(self, request: HttpRequest) -> HttpResponse:
        """:meth:`handle` body, with the correlation ID already bound."""
        with self._counter_lock:
            self.requests += 1
        started = time.perf_counter()
        try:
            response = self._route(request)
        except ReproError as exc:
            with self._counter_lock:
                self.errors += 1
            envelope = ErrorEnvelope.from_exception(
                exc, request_id=current_request_id()
            )
            self._errors_metric.inc(type=envelope.type)
            response = _error_response(envelope)
        except Exception as exc:  # pragma: no cover - defensive
            # Unknown failures must still leave as structured 500s:
            # the envelope names the exception type, never the
            # traceback or its message (which could leak paths).
            with self._counter_lock:
                self.errors += 1
            envelope = ErrorEnvelope.from_exception(
                exc, request_id=current_request_id()
            )
            self._errors_metric.inc(type=envelope.type)
            response = _error_response(envelope)
        if response.status == 304:
            with self._counter_lock:
                self.not_modified += 1
            self._not_modified_metric.inc()
        route = self._route_name(request)
        self._latency_metric.observe(
            time.perf_counter() - started, route=route
        )
        self._requests_metric.inc(
            route=route,
            method=request.method.upper(),
            status=str(response.status),
        )
        return response

    @staticmethod
    def _route_name(request: HttpRequest) -> str:
        """The request's route *template* (bounds label cardinality).

        Metrics label by route shape (``/diff/{a}/{b}``), never by the
        raw path — otherwise every distinct run name would mint a new
        sample series.
        """
        parts = request.segments
        if len(parts) == 1 and parts[0] in (
            "healthz", "stats", "metrics", "specs", "runs",
            "matrix", "query",
        ):
            return f"/{parts[0]}"
        if len(parts) == 2 and parts[0] == "specs":
            return "/specs/{name}"
        if len(parts) == 2 and parts[0] == "runs":
            return "/runs/{name}"
        if len(parts) == 3 and parts[0] == "diff":
            return "/diff/{a}/{b}"
        if parts == ["prov", "import"]:
            return "/prov/import"
        if parts == ["stream", "events"]:
            return "/stream/events"
        if parts == ["stream", "live"]:
            return "/stream/live"
        return "<unmatched>"

    def _route(self, request: HttpRequest) -> HttpResponse:
        """Match ``(method, segments)`` to a resource handler."""
        parts = request.segments
        method = request.method.upper()
        if parts == ["healthz"] and method == "GET":
            return self._healthz()
        if parts == ["stats"] and method == "GET":
            return self._stats()
        if parts == ["metrics"] and method == "GET":
            return self._metrics(request)
        if parts == ["specs"] and method == "GET":
            return self._specs_list()
        if len(parts) == 2 and parts[0] == "specs":
            if method == "GET":
                return self._spec_get(request, parts[1])
            if method == "PUT":
                return self._spec_put(request, parts[1])
            return _status_error(
                f"method {method} not allowed on /specs/{{name}}", 405
            )
        if parts == ["runs"] and method == "GET":
            return self._runs_list(request)
        if len(parts) == 2 and parts[0] == "runs":
            if method == "GET":
                return self._run_get(request, parts[1])
            if method == "PUT":
                return self._run_put(request, parts[1])
            return _status_error(
                f"method {method} not allowed on /runs/{{name}}", 405
            )
        if len(parts) == 3 and parts[0] == "diff" and method == "GET":
            return self._diff(request, parts[1], parts[2])
        if parts == ["matrix"] and method == "POST":
            return self._matrix(request)
        if parts == ["query"] and method == "POST":
            return self._query(request)
        if parts == ["prov", "import"] and method == "POST":
            return self._prov_import(request)
        if parts == ["stream", "events"] and method == "POST":
            return self._stream_events(request)
        if parts == ["stream", "live"] and method == "GET":
            return self._stream_live()
        return _status_error(
            f"no route for {method} {request.path}", 404
        )

    # -- parameter plumbing ---------------------------------------------
    def _check_spec(self, spec: Optional[str]) -> Optional[str]:
        """Verify an (optional) spec name exists; passes ``None`` through."""
        if spec is not None:
            spec = str(spec)
            if spec not in set(self.workspace.specifications()):
                raise NotFoundError(
                    f"no stored specification named {spec!r}"
                )
        return spec

    def _spec_param(self, request: HttpRequest) -> Optional[str]:
        """The ``spec=`` parameter, verified to exist when given."""
        return self._check_spec(request.query.get("spec"))

    def _cost_param(self, source: Optional[str]):
        """A cost spec string resolved to a model (``None`` → default)."""
        if source is None:
            return self.workspace.config.cost
        return cost_from_spec(source)

    # -- health and stats -----------------------------------------------
    def _healthz(self) -> HttpResponse:
        return HttpResponse.json(
            {
                "status": "ok",
                "version": _package_version(),
                "wire_version": WIRE_VERSION,
                "specifications": len(self.workspace.specifications()),
            }
        )

    def _stats(self) -> HttpResponse:
        snapshot = self.workspace.stats_snapshot()
        snapshot.source = "server"
        with self._counter_lock:
            snapshot.counters["server_requests"] = self.requests
            snapshot.counters["server_not_modified"] = self.not_modified
            snapshot.counters["server_errors"] = self.errors
            snapshot.counters["server_in_flight"] = self._in_flight
        # The streaming hub's counters ride along (``stream_*``), from
        # the same numbers the ``stream_*`` metric families export —
        # ``/stats`` and ``/metrics`` always agree.
        snapshot.counters.update(
            self.workspace.stream_hub.summary().as_counters()
        )
        return HttpResponse.json(snapshot.to_dict())

    def _metrics(self, request: HttpRequest) -> HttpResponse:
        """The registry's scrape face: Prometheus text, or JSON.

        ``?format=json`` (or ``Accept: application/json``) selects the
        JSON rendering; everything else gets text exposition 0.0.4.
        """
        registry = self.workspace.metrics
        format_param = request.query.get("format", "").strip().lower()
        if format_param not in ("", "json", "prometheus", "text"):
            raise ReproError(
                f"unknown metrics format {format_param!r} "
                "(expected 'prometheus' or 'json')"
            )
        wants_json = format_param == "json" or (
            not format_param and JSON_TYPE in request.header("accept")
        )
        if wants_json:
            return HttpResponse.json(
                {"v": WIRE_VERSION, "metrics": registry.snapshot()}
            )
        return HttpResponse.text(
            registry.render_prometheus(), PROMETHEUS_TYPE
        )

    # -- specifications -------------------------------------------------
    def _specs_list(self) -> HttpResponse:
        return HttpResponse.json(
            {"specs": self.workspace.specifications()}
        )

    def _spec_get(
        self, request: HttpRequest, name: str
    ) -> HttpResponse:
        spec = self.workspace.specification(name)
        if XML_TYPE in request.header("accept"):
            return HttpResponse.text(
                specification_to_xml(spec), XML_TYPE
            )
        return HttpResponse.json(
            {
                "spec": spec.name,
                "nodes": spec.graph.num_nodes,
                "edges": spec.graph.num_edges,
                "runs": len(self.workspace.runs(spec=spec.name)),
            }
        )

    def _spec_put(
        self, request: HttpRequest, name: str
    ) -> HttpResponse:
        try:
            text = request.body.decode("utf8")
        except UnicodeDecodeError:
            raise ReproError(
                "specification body must be UTF-8 XML"
            ) from None
        spec = specification_from_xml(text)
        if spec.name != name:
            from repro.errors import ConflictError

            raise ConflictError(
                f"URL names specification {name!r} but the document "
                f"declares {spec.name!r}"
            )
        self.workspace.register(spec)
        return HttpResponse.json(
            {"spec": spec.name, "registered": True}
        )

    # -- runs -------------------------------------------------------------
    def _runs_list(self, request: HttpRequest) -> HttpResponse:
        spec = self._spec_param(request)
        resolved = self.workspace._spec_name(spec)
        return HttpResponse.json(
            {
                "spec": resolved,
                "runs": self.workspace.runs(spec=resolved),
            }
        )

    def _run_get(
        self, request: HttpRequest, name: str
    ) -> HttpResponse:
        spec = self._spec_param(request)
        if PROV_JSON_TYPE in request.header("accept"):
            return HttpResponse.text(
                self.workspace.export_prov(name, spec=spec),
                PROV_JSON_TYPE,
            )
        run = self.workspace.run(name, spec=spec)
        fingerprint = self.workspace.service.fingerprints(
            run.spec.name, [name]
        )[name]
        return HttpResponse.json(
            {
                "spec": run.spec.name,
                "run": name,
                "nodes": run.num_nodes,
                "edges": run.num_edges,
                "fingerprint": fingerprint,
            }
        )

    def _run_put(
        self, request: HttpRequest, name: str
    ) -> HttpResponse:
        content_type = request.header("content-type", JSON_TYPE)
        if (
            PROV_JSON_TYPE not in content_type
            and JSON_TYPE not in content_type
        ):
            raise ReproError(
                f"unsupported run content type {content_type!r} "
                f"(send {PROV_JSON_TYPE})"
            )
        try:
            text = request.body.decode("utf8")
        except UnicodeDecodeError:
            raise ReproError(
                "run body must be UTF-8 PROV-JSON"
            ) from None
        result = self.workspace.import_prov(text, name=name)
        return HttpResponse.json(
            {
                "spec": result.spec.name,
                "run": result.run.name,
                "origin": result.origin,
            },
            status=201,
        )

    # -- differencing -----------------------------------------------------
    def _diff(
        self, request: HttpRequest, run_a: str, run_b: str
    ) -> HttpResponse:
        spec = self._spec_param(request)
        cost = self._cost_param(request.query.get("cost"))
        spec_name = self.workspace._spec_name(spec)
        headers: Dict[str, str] = {}
        cost_key = cost_model_key(cost)
        if cost_key is not None:
            # Revalidation is two index stats: unchanged run files
            # answer from the fingerprint index without XML parsing.
            fingerprints = self.workspace.service.fingerprints(
                spec_name, [run_a, run_b]
            )
            tag = script_key(
                fingerprints[run_a], fingerprints[run_b], cost_key
            )
            etag = '"' + hashlib.sha256(
                tag.encode("utf8")
            ).hexdigest()[:32] + '"'
            headers["ETag"] = etag
            headers["Cache-Control"] = "no-cache"
            if request.header("if-none-match") == etag:
                return HttpResponse(
                    status=304, body=b"", headers=headers
                )
        outcome = self.workspace.diff(
            run_a, run_b, spec=spec_name, cost=cost
        )
        return HttpResponse.json(outcome.to_dict(), headers=headers)

    @staticmethod
    def _shard_param(body: dict, what: str):
        """Validate an optional ``shard: {index, count}`` body object.

        Cluster workers receive it from the routing parent so each
        evaluates only the pairs its shard owns; single-process clients
        simply omit it.
        """
        shard = body.get("shard")
        if shard is None:
            return None
        if not isinstance(shard, dict):
            raise ReproError(
                f"{what} 'shard' must be an object with "
                f"'index' and 'count', got {shard!r}"
            )
        index = shard.get("index")
        count = shard.get("count")
        for label, value in (("index", index), ("count", count)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ReproError(
                    f"{what} shard {label!r} must be an integer, "
                    f"got {value!r}"
                )
        if count <= 0 or not 0 <= index < count:
            raise ReproError(
                f"{what} shard requires 0 <= index < count, "
                f"got index={index} count={count}"
            )
        return (index, count)

    def _matrix(self, request: HttpRequest) -> HttpResponse:
        body = request.json_body()
        if not isinstance(body, dict):
            raise ReproError("matrix request body must be an object")
        spec = self._check_spec(body.get("spec"))
        cost = self._cost_param(body.get("cost"))
        runs = _run_list(body.get("runs"), "matrix")
        result = self.workspace.matrix(
            spec=spec,
            cost=cost,
            runs=runs,
            shard=self._shard_param(body, "matrix"),
        )
        return HttpResponse.json(result.to_dict())

    # -- querying ---------------------------------------------------------
    def _query(self, request: HttpRequest) -> HttpResponse:
        body = request.json_body()
        if not isinstance(body, dict):
            raise ReproError("query request body must be an object")
        spec = self._check_spec(body.get("spec"))
        cost = self._cost_param(body.get("cost"))
        limit = body.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int):
                raise ReproError(
                    f"query 'limit' must be an integer, got {limit!r}"
                )
        cursor = body.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ReproError(
                f"query 'cursor' must be a string, got {cursor!r}"
            )
        page = self.workspace.query_page(
            filter=QueryFilter.from_dict(body.get("filter")),
            spec=spec,
            cost=cost,
            cursor=cursor,
            limit=limit,
            runs=_run_list(body.get("runs"), "query"),
            shard=self._shard_param(body, "query"),
        )
        return HttpResponse.json(page.to_dict())

    # -- interchange -------------------------------------------------------
    def _prov_import(self, request: HttpRequest) -> HttpResponse:
        try:
            text = request.body.decode("utf8")
        except UnicodeDecodeError:
            raise ReproError(
                "PROV document must be UTF-8 JSON"
            ) from None
        if not text.strip():
            raise ReproError("PROV import requires a document body")
        name = request.query.get("name", "")
        spec_name = request.query.get("spec_name")
        diff = request.query.get("diff", "1") not in ("0", "false")
        cost = self._cost_param(request.query.get("cost"))
        if diff:
            result, distances = self.workspace.import_prov(
                text,
                name=name,
                spec_name=spec_name,
                diff=True,
                cost=cost,
            )
        else:
            result = self.workspace.import_prov(
                text, name=name, spec_name=spec_name
            )
            distances = {}
        report = result.report
        summary = ImportSummary(
            spec_name=result.spec.name,
            run_name=result.run.name,
            origin=result.origin,
            nodes=result.run.num_nodes,
            edges=result.run.num_edges,
            report=report.to_dict(),
            report_lines=list(report.summary_lines()),
            new_pairs=dict(distances),
        )
        return HttpResponse.json(summary.to_dict(), status=201)

    # -- streaming ingestion ----------------------------------------------
    def _stream_events(self, request: HttpRequest) -> HttpResponse:
        """One NDJSON event batch in, one :class:`StreamAck` out.

        A malformed frame, a sequencing violation, or a failed close
        leaves as the ordinary structured error envelope; the applied
        prefix stays acknowledged and the client resumes by replaying
        ``run_open`` plus its unacknowledged suffix.
        """
        from repro.stream.events import decode_events

        events = decode_events(request.body)
        ack = self.workspace.stream_hub.apply_batch(events)
        return HttpResponse.json(ack.to_dict())

    def _stream_live(self) -> HttpResponse:
        """Live analytics of every open streaming session."""
        sessions = self.workspace.stream_hub.live()
        return HttpResponse.json(
            {
                "v": WIRE_VERSION,
                "sessions": [status.to_dict() for status in sessions],
            }
        )

    # -- transport-level rejections ---------------------------------------
    def reject(
        self, exc: ReproError, method: str, path: str
    ) -> HttpResponse:
        """An error envelope for a request the transport refused.

        The HTTP server calls this *instead of* :meth:`handle` when it
        cannot responsibly produce an :class:`HttpRequest` at all — an
        oversized body it refuses to read (413), or chunked framing it
        cannot decode (400).  Counters, metrics and the correlation
        header behave exactly as for routed errors.
        """
        request_id = new_request_id()
        with self._counter_lock:
            self.requests += 1
            self.errors += 1
        envelope = ErrorEnvelope.from_exception(
            exc, request_id=request_id
        )
        self._errors_metric.inc(type=envelope.type)
        route = self._route_name(
            HttpRequest(method=method, path=path)
        )
        self._requests_metric.inc(
            route=route,
            method=method.upper(),
            status=str(envelope.status),
        )
        response = _error_response(envelope)
        response.headers.setdefault(REQUEST_ID_HEADER, request_id)
        return response
