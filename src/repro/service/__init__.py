"""The HTTP diff service: a workspace served over the wire.

This package turns a :class:`repro.workspace.Workspace` into a network
service speaking the wire schema of :mod:`repro.api_types`:

* :mod:`repro.service.app` — the framework-free request router: pure
  ``HttpRequest -> HttpResponse`` functions over a workspace, with
  structured :class:`~repro.api_types.ErrorEnvelope` failures and
  ETag revalidation for diff reads;
* :mod:`repro.service.server` — the stdlib
  :class:`~http.server.ThreadingHTTPServer` host binding the app to a
  socket (``repro serve`` and the test fixtures drive it).

The matching client is :class:`repro.client.RemoteWorkspace`, which
implements the same :class:`~repro.api_types.WorkspaceAPI` protocol the
local workspace does — over this service.
"""

from repro.service.app import HttpRequest, HttpResponse, WorkspaceApp
from repro.service.server import DiffServer, serve

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "WorkspaceApp",
    "DiffServer",
    "serve",
]
