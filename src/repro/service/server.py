"""The stdlib HTTP host for the diff service (``repro serve``).

Binds a :class:`~repro.service.app.WorkspaceApp` to a
:class:`~http.server.ThreadingHTTPServer`: one thread per in-flight
request, all funnelled into one shared :class:`Workspace` (whose corpus
service is a lock-disciplined monitor — see
:mod:`repro.corpus.service`).  No third-party dependencies: the wire
layer is ~a hundred lines over ``http.server``.

Two driving styles:

* ``DiffServer(store, config).serve_forever()`` — the CLI's blocking
  mode (``repro serve``);
* ``with DiffServer(store) as server: ...`` — background-thread mode
  for tests and embedded use; ``server.url`` is ready on entry, and
  leaving the block shuts the socket down cleanly.

``port=0`` asks the OS for a free port (the test fixtures' default),
reported through :attr:`DiffServer.port`.

Observability: constructing a server configures the ``repro`` logger
hierarchy from its config (``log_level``/``log_format``), every handled
request emits one structured access-log record on ``repro.access``
(method, path, status, duration, correlation ID), and :meth:`stop`
drains gracefully — the listener closes first, in-flight requests get
``drain_timeout`` seconds to finish, and a final stats line is logged.
"""

from __future__ import annotations

import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.config import ReproConfig
from repro.errors import (
    PayloadTooLargeError,
    ReproError,
    ServiceUnavailableError,
)
from repro.obs.logging import configure_logging, get_logger
from repro.service.app import (
    REQUEST_ID_HEADER,
    HttpRequest,
    WorkspaceApp,
)
from repro.workspace import Workspace

#: Default seconds :meth:`DiffServer.stop` waits for in-flight requests.
DEFAULT_DRAIN_TIMEOUT = 10.0

access_log = get_logger("access")
logger = get_logger("service.server")


class _BodyTooLarge(Exception):
    """Internal: a request body crossed the configured ceiling."""


def _make_handler(app: WorkspaceApp, max_body_bytes: int):
    """A request-handler class bound to one app instance."""

    class Handler(BaseHTTPRequestHandler):
        """Adapts ``http.server`` requests onto the framework-free app."""

        # Keep-alive responses; every response carries Content-Length.
        protocol_version = "HTTP/1.1"

        def _dispatch(self) -> None:
            app.begin_request()
            try:
                self._handle_one()
            finally:
                app.end_request()

        def _read_chunked(self, limit: int) -> bytes:
            """Decode a ``Transfer-Encoding: chunked`` body, capped.

            Raises :class:`_BodyTooLarge` the moment the running total
            crosses ``limit`` (without reading the rest), and
            :class:`ValueError` on malformed framing.
            """
            total = 0
            chunks = []
            while True:
                size_line = self.rfile.readline(65536)
                if not size_line.endswith(b"\n"):
                    raise ValueError("truncated chunk-size line")
                size = int(size_line.split(b";", 1)[0].strip(), 16)
                if size < 0:
                    raise ValueError("negative chunk size")
                if size == 0:
                    break
                total += size
                if total > limit:
                    raise _BodyTooLarge()
                chunk = self.rfile.read(size)
                if len(chunk) != size:
                    raise ValueError("truncated chunk payload")
                if self.rfile.read(2) != b"\r\n":
                    raise ValueError("chunk payload not CRLF-terminated")
                chunks.append(chunk)
            # Trailer section: discard header lines up to the blank.
            while True:
                line = self.rfile.readline(65536)
                if line in (b"", b"\n", b"\r\n"):
                    break
            return b"".join(chunks)

        def _read_body(self) -> bytes:
            """The request body, enforcing ``config.max_body_bytes``.

            An oversized declared ``Content-Length`` is refused without
            reading a single body byte; a chunked transfer is refused
            at the first chunk that crosses the ceiling.  Either way
            the connection closes (the unread remainder poisons it for
            keep-alive) after the structured ``413`` envelope is sent.
            """
            limit = max_body_bytes
            transfer = (
                self.headers.get("Transfer-Encoding") or ""
            ).lower()
            if "chunked" in transfer:
                try:
                    return self._read_chunked(limit)
                except _BodyTooLarge:
                    self.close_connection = True
                    raise PayloadTooLargeError(
                        "chunked request body exceeds the server's "
                        f"limit of {limit} bytes"
                    ) from None
                except ValueError as exc:
                    self.close_connection = True
                    raise ReproError(
                        f"malformed chunked request body: {exc}"
                    ) from None
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                length = 0
            if length > limit:
                self.close_connection = True
                raise PayloadTooLargeError(
                    f"request body of {length} bytes exceeds the "
                    f"server's limit of {limit} bytes"
                )
            return self.rfile.read(length) if length > 0 else b""

        def _handle_one(self) -> None:
            started = time.perf_counter()
            parsed = urlsplit(self.path)
            query = {
                key: values[-1]
                for key, values in parse_qs(
                    parsed.query, keep_blank_values=True
                ).items()
            }
            try:
                body = self._read_body()
            except ReproError as exc:
                # The body was never (fully) read: the app cannot see
                # this request, so the rejection is built at the
                # transport boundary — same envelope, same accounting.
                response = app.reject(exc, self.command, parsed.path)
            else:
                request = HttpRequest(
                    method=self.command,
                    path=parsed.path,
                    query=query,
                    headers={
                        key.lower(): value
                        for key, value in self.headers.items()
                    },
                    body=body,
                )
                response = app.handle(request)
            self.send_response(response.status)
            if response.body:
                self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            if response.body:
                self.wfile.write(response.body)
            access_log.info(
                "%s %s %d",
                self.command,
                parsed.path,
                response.status,
                extra={
                    "method": self.command,
                    "path": parsed.path,
                    "status": response.status,
                    "duration_ms": round(
                        (time.perf_counter() - started) * 1000.0, 3
                    ),
                    "request_id": response.headers.get(
                        REQUEST_ID_HEADER
                    ),
                },
            )

        do_GET = _dispatch
        do_PUT = _dispatch
        do_POST = _dispatch
        do_DELETE = _dispatch

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            """Silence ``http.server``'s raw stderr lines — the access
            log above replaces them (structured, correlation-ID'd, and
            governed by ``log_format`` so tests can turn it off)."""

    return Handler


class DiffServer:
    """One workspace served over HTTP.

    Parameters
    ----------
    root:
        Store directory, an existing
        :class:`~repro.io.store.WorkflowStore`, or a fully built
        :class:`Workspace` to share.
    config:
        The :class:`ReproConfig` for a workspace built from a path
        (ignored when ``root`` is already a workspace — except that its
        logging knobs still apply when given).
    host / port:
        Bind address.  ``port=0`` picks a free port.
    """

    def __init__(
        self,
        root,
        config: Optional[ReproConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.workspace = (
            root
            if isinstance(root, Workspace)
            else Workspace(root, config)
        )
        self.config = config or self.workspace.config
        configure_logging(
            level=self.config.log_level,
            format=self.config.log_format,
        )
        self.app = WorkspaceApp(self.workspace)
        self.httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(self.app, self.config.max_body_bytes),
        )
        # Handler threads are daemonic: after a drain timeout the
        # process may exit with stragglers still running — the
        # documented hard-exit fallback.
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stop_lock = threading.Lock()
        self._stopped = False

    @property
    def host(self) -> str:
        """The bound host address."""
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the OS's pick under ``port=0``)."""
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        """The service base URL, e.g. ``http://127.0.0.1:8321``."""
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (blocking)."""
        logger.info(
            "serving %s", self.url,
            extra={"host": self.host, "port": self.port},
        )
        self.httpd.serve_forever()

    def start(self) -> "DiffServer":
        """Serve on a background daemon thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name=f"repro-diff-server:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(
        self, drain_timeout: float = DEFAULT_DRAIN_TIMEOUT
    ) -> None:
        """Drain and stop: accept no more, finish in-flight, release.

        The accept loop stops first (no new connections), then
        in-flight requests get up to ``drain_timeout`` seconds to
        complete before the socket closes.  Requests still pending at
        the deadline that are blocked on a coalesced in-flight
        computation (single-flight followers waiting on a leader that
        will not land in time) are *aborted deterministically*: every
        pending flight fails with
        :class:`~repro.errors.ServiceUnavailableError`, which the app
        maps to a structured ``503`` — completed-or-503, never a hung
        client.  Only stragglers that are neither finished nor
        abortable are abandoned to their daemon threads.  Idempotent —
        signal handlers and ``finally`` blocks may race onto it.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self.httpd.shutdown()
        deadline = time.monotonic() + max(0.0, drain_timeout)
        while self.app.in_flight() > 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        if self.app.in_flight() > 0:
            # Deadline passed with requests still pending: fail every
            # coalesced waiter with a 503 envelope, then give the newly
            # unblocked handlers a short grace period to write it out.
            aborted = self.workspace.service.abort_inflight(
                ServiceUnavailableError(
                    "server is shutting down; retry against a healthy "
                    "instance"
                )
            )
            if aborted:
                logger.warning(
                    "drain timeout: aborted %d coalesced flight(s) "
                    "with 503",
                    aborted,
                    extra={"aborted_flights": aborted},
                )
                grace = time.monotonic() + 1.0
                while (
                    self.app.in_flight() > 0
                    and time.monotonic() < grace
                ):
                    time.sleep(0.01)
        remaining = self.app.in_flight()
        if remaining:
            logger.warning(
                "drain timeout: abandoning %d in-flight request(s)",
                remaining,
                extra={"in_flight": remaining},
            )
        stats = self.workspace.service.stats_counters
        logger.info(
            "server stopped",
            extra={
                "requests": self.app.requests,
                "errors": self.app.errors,
                "not_modified": self.app.not_modified,
                "computed_pairs": stats["computed_pairs"],
                "computed_scripts": stats["computed_scripts"],
            },
        )
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "DiffServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    root,
    config: Optional[ReproConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8321,
) -> None:
    """Blocking convenience: build a :class:`DiffServer` and serve.

    The programmatic equivalent of ``repro serve STORE --port N``.
    """
    DiffServer(root, config, host=host, port=port).serve_forever()
