"""Append-only results log with copy-on-write snapshots.

The read-mostly half of the cluster design: computed distances are
*appended* by writers and *read* through an immutable snapshot dict
that is swapped atomically.  Readers never take the writer lock — they
load the current snapshot reference (a single attribute read, atomic
under the GIL) and look keys up in a dict no writer will ever mutate.
Writers build ``new = dict(old); new.update(batch)`` under a small
lock and publish by reference assignment.

This trades writer cost (O(n) copy per publish, amortised by batching
whole backend dispatches into one publish) for zero reader
synchronisation — the right trade for a diff server whose traffic is
overwhelmingly warm-cache reads.  The persistent
:class:`~repro.corpus.cache.DistanceCache` stays authoritative for
durability and stats; the log is a lock-free front tier over it.
"""

import threading
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["ResultsLog"]


class ResultsLog:
    """Lock-free-read mapping built from an append-only entry log."""

    def __init__(self):
        self._write_lock = threading.Lock()
        #: Immutable published snapshot.  Never mutated in place —
        #: replaced wholesale under ``_write_lock``.
        self._snapshot: Dict[Any, Any] = {}
        #: Append-only history of (key, value) publishes, for
        #: observability (``entries`` feeds drain logging and tests).
        self._log: List[Tuple[Any, Any]] = []

    # -- readers (no lock) ---------------------------------------------
    def get(self, key: Any, default: Any = None) -> Any:
        """Current value for ``key`` — never blocks on writers."""
        return self._snapshot.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot)

    def snapshot(self) -> Mapping[Any, Any]:
        """The current immutable snapshot (safe to iterate freely)."""
        return self._snapshot

    # -- writers -------------------------------------------------------
    def append(self, key: Any, value: Any) -> None:
        """Publish one entry (copy-on-write swap)."""
        self.extend([(key, value)])

    def extend(self, entries: Iterable[Tuple[Any, Any]]) -> None:
        """Publish a batch of entries in one snapshot swap.

        Batching an entire backend dispatch into one ``extend`` keeps
        the O(n) copy amortised: one copy per *batch*, not per pair.
        """
        materialised = list(entries)
        if not materialised:
            return
        with self._write_lock:
            new_snapshot = dict(self._snapshot)
            new_snapshot.update(materialised)
            self._log.extend(materialised)
            self._snapshot = new_snapshot

    def entries(self) -> int:
        """Total publishes ever appended (monotonic)."""
        return len(self._log)
