"""Keyed single-flight coalescing for identical in-flight computations.

When K threads concurrently need the same expensive result (the same
cold ``GET /diff/{a}/{b}``, keyed on canonical fingerprints + cost
key), exactly one of them — the *leader* — performs the computation;
the other K-1 — *followers* — block on the leader's flight and receive
the same value.  The alternative (each thread noticing the cache miss
independently and computing its own copy) wastes K-1 DPs and, worse,
serialises them behind whatever lock guards the cache.

Deadlock discipline: a thread that leads several flights must finish
(or fail) **all** of them before waiting on any flight it follows.
``DiffService`` honours this by batching every key it leads into one
backend dispatch, publishing all results, and only then waiting on
followed flights.  Flights are resolved outside any service lock, so a
follower never blocks a leader's publish.

``abort`` exists for graceful drain: a stopping server fails every
pending flight with :class:`~repro.errors.ServiceUnavailableError`, so
followers receive a deterministic 503 instead of hanging past the
drain deadline.
"""

import threading
from typing import Any, Dict, Optional, Tuple

__all__ = ["Flight", "SingleFlight"]


class Flight:
    """One in-flight computation: an event plus its eventual outcome.

    Followers wait on :attr:`done`; the leader fills in exactly one of
    :attr:`value` / :attr:`error` via :meth:`SingleFlight.finish`.
    """

    __slots__ = ("key", "done", "value", "error", "waiters")

    def __init__(self, key: Any):
        self.key = key
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        #: Follower count, maintained under the table lock — purely
        #: observational (drain logging), never used for control flow.
        self.waiters = 0

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the flight lands, then return or raise.

        Raises :class:`TimeoutError` if the leader has not finished
        within ``timeout`` seconds (``None`` waits forever).
        """
        if not self.done.wait(timeout):
            raise TimeoutError(
                f"single-flight wait timed out for key {self.key!r}"
            )
        if self.error is not None:
            raise self.error
        return self.value


class SingleFlight:
    """A keyed table of in-flight computations.

    Keys must be hashable and *content-derived* (fingerprints + cost
    key, never object identity), so two requests for the same logical
    work always collide.  The table never stores finished results —
    it is not a cache; the caller's cache is consulted first and a
    finished flight's value flows to followers through the
    :class:`Flight` object itself.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: Dict[Any, Flight] = {}

    def begin(self, key: Any) -> Tuple[bool, Flight]:
        """Join or start the flight for ``key``.

        Returns ``(leader, flight)``.  The leader **must** eventually
        call :meth:`finish` with this flight — on success and on
        failure both — or followers hang until ``abort``.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is not None:
                flight.waiters += 1
                return False, flight
            flight = Flight(key)
            self._flights[key] = flight
            return True, flight

    def finish(
        self,
        flight: Flight,
        value: Any = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Land a flight: publish its outcome and wake all followers.

        Idempotent — a flight already landed (e.g. by ``abort`` racing
        a slow leader) keeps its first outcome.
        """
        with self._lock:
            if self._flights.get(flight.key) is flight:
                del self._flights[flight.key]
            if flight.done.is_set():
                return
            flight.value = value
            flight.error = error
            flight.done.set()

    def abort(self, error: BaseException) -> int:
        """Fail every pending flight with ``error``; return the count.

        Used by graceful drain: followers blocked in
        :meth:`Flight.result` raise immediately instead of waiting out
        leaders that will never publish.
        """
        with self._lock:
            pending = list(self._flights.values())
            self._flights.clear()
        for flight in pending:
            if not flight.done.is_set():
                flight.error = error
                flight.done.set()
        return len(pending)

    def in_flight(self) -> int:
        """Number of currently pending flights."""
        with self._lock:
            return len(self._flights)

    def waiters(self) -> int:
        """Total followers currently blocked across all flights."""
        with self._lock:
            return sum(f.waiters for f in self._flights.values())
