"""Worker process lifecycle: spawn, watch, restart, stop.

The :class:`WorkerSupervisor` owns the cluster's worker processes.  It
spawns ``count`` workers (``spawn`` start method — importable entry
point, picklable arguments, no inherited locks), learns each worker's
bound port over a one-shot pipe, and then watches liveness from a
background thread: a worker that dies is restarted — first on its old
port (so the parent's routing table stays stable; the server socket's
``SO_REUSEADDR`` absorbs ``TIME_WAIT``), falling back to a fresh
OS-assigned port when the old one cannot be rebound.  Restart counts
are capped (:attr:`WorkerSupervisor.restart_limit`) so a worker that
crashes on arrival cannot flap forever; a worker past its limit stays
down and ``/healthz`` reports the cluster degraded.

Supervision state is guarded by one small lock; the routing parent
reads ports through :meth:`port_of` per request, so it always sees the
current incarnation of a shard's worker.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.worker import worker_main
from repro.config import ReproConfig
from repro.errors import ReproError
from repro.obs.logging import get_logger

__all__ = ["WorkerHandle", "WorkerSupervisor"]

logger = get_logger("cluster.supervisor")

#: Seconds to wait for a spawned worker to report its bound port.
START_TIMEOUT = 60.0


@dataclass
class WorkerHandle:
    """One live (or lately deceased) worker incarnation."""

    index: int
    process: Any
    port: int
    pid: int
    restarts: int = 0

    def alive(self) -> bool:
        return self.process.is_alive()

    def status(self) -> Dict[str, Any]:
        """The ``/healthz`` row for this worker."""
        return {
            "index": self.index,
            "pid": self.pid,
            "port": self.port,
            "alive": self.alive(),
            "restarts": self.restarts,
        }


class WorkerSupervisor:
    """Spawns and supervises the cluster's worker processes."""

    def __init__(
        self,
        root,
        config: ReproConfig,
        count: int,
        host: str = "127.0.0.1",
        poll_interval: float = 0.2,
        restart_limit: int = 10,
    ):
        if count < 1:
            raise ReproError(
                f"cluster needs at least one worker, got {count}"
            )
        # Accept what ClusterServer accepts: a path or an existing
        # WorkflowStore/Workspace (unwrapped to its directory).  The
        # old unconditional str(root) turned a passed-in store object
        # into its repr — workers then mkdir'd a
        # ``<...WorkflowStore object at 0x...>`` directory under CWD.
        if isinstance(root, (str, os.PathLike)):
            self.root = os.fspath(root)
        else:
            store_root = getattr(root, "store", root)  # Workspace
            store_root = getattr(store_root, "root", None)  # store
            if not isinstance(store_root, (str, os.PathLike)):
                raise ReproError(
                    "worker supervisor root must be a path or a "
                    f"store, not {type(root).__name__}"
                )
            self.root = os.fspath(store_root)
        self.config = config
        self.count = count
        self.host = host
        self.poll_interval = poll_interval
        self.restart_limit = restart_limit
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._handles: Dict[int, WorkerHandle] = {}
        self._stopping = threading.Event()
        self._watcher: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "WorkerSupervisor":
        """Spawn all workers and begin liveness supervision."""
        if self._handles:
            return self
        try:
            for index in range(self.count):
                handle = self._spawn(index, port=0)
                with self._lock:
                    self._handles[index] = handle
        except BaseException:
            self.stop()
            raise
        self._watcher = threading.Thread(
            target=self._watch,
            name="repro-cluster-supervisor",
            daemon=True,
        )
        self._watcher.start()
        return self

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Terminate every worker: SIGTERM (graceful drain), then kill."""
        self._stopping.set()
        if self._watcher is not None:
            self._watcher.join(timeout=5)
            self._watcher = None
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            if handle.alive():
                handle.process.terminate()
        deadline = time.monotonic() + max(1.0, drain_timeout)
        for handle in handles:
            remaining = max(0.1, deadline - time.monotonic())
            handle.process.join(timeout=remaining)
            if handle.alive():
                handle.process.kill()
                handle.process.join(timeout=2)

    # -- routing-table reads ---------------------------------------------
    def port_of(self, index: int) -> int:
        """The current port of shard ``index``'s worker."""
        with self._lock:
            handle = self._handles.get(index)
        if handle is None:
            raise ReproError(f"no worker for shard {index}")
        return handle.port

    def statuses(self) -> List[Dict[str, Any]]:
        """Per-worker ``/healthz`` rows, in shard order."""
        with self._lock:
            handles = [
                self._handles[i]
                for i in sorted(self._handles)
            ]
        return [handle.status() for handle in handles]

    def all_alive(self) -> bool:
        with self._lock:
            handles = list(self._handles.values())
        return len(handles) == self.count and all(
            h.alive() for h in handles
        )

    def total_restarts(self) -> int:
        with self._lock:
            return sum(h.restarts for h in self._handles.values())

    # -- spawning --------------------------------------------------------
    def _spawn(self, index: int, port: int) -> WorkerHandle:
        """Start one worker and wait for its readiness report."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(
                index,
                self.count,
                self.root,
                self.config,
                self.host,
                port,
                child_conn,
            ),
            name=f"repro-cluster-worker:{index}",
        )
        process.start()
        child_conn.close()
        try:
            deadline = time.monotonic() + START_TIMEOUT
            while not parent_conn.poll(0.1):
                if not process.is_alive():
                    raise ReproError(
                        f"cluster worker {index} exited during startup "
                        f"(exit code {process.exitcode})"
                    )
                if time.monotonic() > deadline:
                    process.terminate()
                    raise ReproError(
                        f"cluster worker {index} did not report ready "
                        f"within {START_TIMEOUT}s"
                    )
            try:
                ready = parent_conn.recv()
            except EOFError:
                raise ReproError(
                    f"cluster worker {index} closed its readiness "
                    "pipe without reporting a port"
                ) from None
        finally:
            parent_conn.close()
        logger.info(
            "worker %d ready on port %d (pid %d)",
            index, ready["port"], ready["pid"],
            extra={
                "worker": index,
                "port": ready["port"],
                "pid": ready["pid"],
            },
        )
        return WorkerHandle(
            index=index,
            process=process,
            port=ready["port"],
            pid=ready["pid"],
        )

    # -- liveness --------------------------------------------------------
    def _watch(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            for index in range(self.count):
                with self._lock:
                    handle = self._handles.get(index)
                if handle is None or handle.alive():
                    continue
                if self._stopping.is_set():
                    return
                self._restart(handle)

    def _restart(self, dead: WorkerHandle) -> None:
        restarts = dead.restarts + 1
        if restarts > self.restart_limit:
            logger.error(
                "worker %d exceeded restart limit (%d); leaving down",
                dead.index, self.restart_limit,
                extra={"worker": dead.index},
            )
            return
        logger.warning(
            "worker %d died (exit code %s); restarting (%d/%d)",
            dead.index, dead.process.exitcode,
            restarts, self.restart_limit,
            extra={"worker": dead.index, "restarts": restarts},
        )
        try:
            # Prefer the old port: the routing table (and any client
            # that cached a worker address) stays valid.
            handle = self._spawn(dead.index, port=dead.port)
        except ReproError:
            try:
                handle = self._spawn(dead.index, port=0)
            except ReproError:
                logger.error(
                    "worker %d failed to restart; will retry",
                    dead.index,
                    extra={"worker": dead.index},
                )
                # Count the attempt so a hopeless crash loop still
                # hits the restart limit instead of spinning forever.
                dead.restarts = restarts
                return
        handle.restarts = restarts
        with self._lock:
            if self._stopping.is_set():
                handle.process.terminate()
                return
            self._handles[dead.index] = handle
