"""The cluster worker entry point: one sharded diff server process.

:func:`worker_main` is the function a
:class:`~repro.cluster.supervisor.WorkerSupervisor` spawns (via the
``spawn`` multiprocessing context, so it must be importable by name and
its arguments picklable).  Each worker is a complete, ordinary
:class:`~repro.service.server.DiffServer` over the *shared* store
directory — the sharding lives entirely in the routing parent, which
only sends a worker the requests (and scatter sub-requests carrying a
``shard`` body parameter) its shard owns.

Workers run with ``persistent=False``: derived state (distance/script
caches, fingerprint and script indexes) stays in worker memory, so N
processes never contend for — or corrupt — the single on-disk index the
store directory could hold.  The store's *primary* artefacts (spec and
run XML, metadata) are still written: distinct runs land in distinct
files, which is safe across processes.  The trade-off is documented in
``docs/SCALING.md``: a restarted worker re-derives its shard's caches
from the primary artefacts instead of reloading them.

Shutdown: SIGTERM triggers the server's own graceful drain (finish
in-flight, abort coalesced waiters with 503, close), exactly the
single-process ``repro serve`` behaviour.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading

from repro.config import ReproConfig

__all__ = ["worker_main"]


def worker_main(
    index: int,
    count: int,
    root: str,
    config: ReproConfig,
    host: str,
    port: int,
    conn,
) -> None:
    """Run one worker: build a server, report readiness, serve.

    ``conn`` is the parent's pipe end; the worker sends one
    ``{"index", "pid", "port"}`` dict once its socket is bound (the
    parent blocks on this to learn the OS-assigned port under
    ``port=0``) and then closes its end.
    """
    from repro.service.server import DiffServer

    worker_config = dataclasses.replace(
        config, persistent=False, workers=0
    )
    server = DiffServer(root, worker_config, host=host, port=port)

    def _drain(signum, frame):
        # stop() must not run on the serving thread: shutdown() would
        # deadlock against the serve_forever loop it waits on.
        threading.Thread(
            target=server.stop,
            name=f"repro-worker-drain:{index}",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    conn.send({"index": index, "pid": os.getpid(), "port": server.port})
    conn.close()
    try:
        server.serve_forever()
    finally:
        server.stop()
