"""The sharded multi-process cluster front: ``repro serve --workers N``.

A :class:`ClusterServer` is a routing parent over ``N`` pre-forked
worker processes (see :mod:`repro.cluster.worker`), each an ordinary
single-process diff server owning a deterministic shard of the pair
space.  The parent binds the public socket and speaks the *same wire
surface* as a single :class:`~repro.service.server.DiffServer` — every
endpoint, envelope, header and byte — so clients (and the conformance
suite) cannot tell the difference.

Routing, by endpoint:

* ``GET /diff/{a}/{b}`` → the worker owning
  :func:`~repro.cluster.shard.shard_for_pair` ``(a, b)``, behind a
  parent-side single-flight table: concurrent identical diff requests
  collapse into one upstream call (and the worker's own single-flight
  collapses whatever still races through, so K cold identical requests
  cost exactly one DP cluster-wide).
* ``GET/PUT /runs/{name}`` and ``POST /prov/import?name=`` → the worker
  owning :func:`~repro.cluster.shard.shard_for_name`.
* ``PUT /specs/{name}`` → broadcast to every worker (each keeps its own
  in-memory derived state over the shared store).
* ``POST /matrix`` / ``POST /query`` → scatter-gather: every worker
  receives the request plus a ``shard: {index, count}`` body parameter
  and evaluates only its own pairs; the parent merges the shard results
  back into exact single-process listing order (and re-applies the
  query cursor/limit), so the merged response is bit-identical.
* ``GET /stats`` → scatter; integral counters sum, derived ratios are
  recomputed from the summed counters, and parent-level ``cluster_*``
  counters ride along (``source`` becomes ``"cluster"``).
* ``GET /metrics`` → scatter (JSON snapshots); every sample gains a
  ``worker="i"`` label and the parent renders the merged registry as
  Prometheus text or JSON.
* ``GET /healthz`` → worker 0's payload plus a ``cluster`` block with
  per-worker liveness, ports and restart counts.
* Everything else (spec/run listings, summaries, streams, 404s) →
  worker 0, verbatim.

A request that hits a crashed worker waits for the supervisor's
restart and retries once; if the shard stays down the client receives
a structured 503 (``ServiceUnavailableError``) — never a hung socket.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlencode

from repro.api_types import ErrorEnvelope, WIRE_VERSION, encode_cursor
from repro.cluster.shard import shard_for_name, shard_for_pair
from repro.cluster.singleflight import SingleFlight
from repro.cluster.supervisor import WorkerSupervisor
from repro.config import ReproConfig
from repro.errors import ReproError, ServiceUnavailableError
from repro.obs.logging import (
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
)
from repro.obs.metrics import _format_value, _label_key, _render_labels
from repro.service.app import (
    JSON_TYPE,
    PROMETHEUS_TYPE,
    REQUEST_ID_HEADER,
    HttpRequest,
    HttpResponse,
    _package_version,
)

__all__ = ["ClusterServer", "serve_cluster"]

logger = get_logger("cluster.server")

#: Seconds the parent waits on one worker round trip.  Generous: a
#: cold all-pairs matrix on a large corpus is one upstream request.
PROXY_TIMEOUT = 600.0

#: Seconds to wait for a crashed worker's restart before giving up.
RESTART_WAIT = 15.0

#: Response headers the parent relays from a worker verbatim.
_RELAY_HEADERS = ("ETag", "Cache-Control", REQUEST_ID_HEADER)

#: Request headers never forwarded upstream (hop-by-hop / transport).
_HOP_HEADERS = frozenset(
    {"host", "connection", "content-length", "keep-alive"}
)


def _error_response(envelope: ErrorEnvelope) -> HttpResponse:
    return HttpResponse.json(envelope.to_dict(), status=envelope.status)


class _ClusterApp:
    """The parent's request handler: routes, scatters, merges.

    Duck-types the :class:`~repro.service.app.WorkspaceApp` surface the
    stdlib transport (``_make_handler``) drives — ``begin_request`` /
    ``end_request`` / ``in_flight`` / ``handle`` / ``reject`` — so the
    cluster parent reuses the exact request-framing, body-limit and
    access-log behaviour of the single-process server.
    """

    def __init__(self, server: "ClusterServer"):
        self.server = server
        self.requests = 0
        self.errors = 0
        self.not_modified = 0
        self.coalesced = 0
        self.proxied = 0
        self._in_flight = 0
        self._counter_lock = threading.Lock()
        self._flights = SingleFlight()

    # -- transport surface ----------------------------------------------
    def begin_request(self) -> None:
        with self._counter_lock:
            self._in_flight += 1

    def end_request(self) -> None:
        with self._counter_lock:
            self._in_flight -= 1

    def in_flight(self) -> int:
        with self._counter_lock:
            return self._in_flight

    def handle(self, request: HttpRequest) -> HttpResponse:
        request_id = (
            request.header(REQUEST_ID_HEADER).strip() or new_request_id()
        )
        with self._counter_lock:
            self.requests += 1
        try:
            response = self._route(request)
        except ReproError as exc:
            with self._counter_lock:
                self.errors += 1
            response = _error_response(
                ErrorEnvelope.from_exception(exc, request_id=request_id)
            )
        except Exception as exc:  # pragma: no cover - defensive
            with self._counter_lock:
                self.errors += 1
            response = _error_response(
                ErrorEnvelope.from_exception(exc, request_id=request_id)
            )
        if response.status == 304:
            with self._counter_lock:
                self.not_modified += 1
        response.headers.setdefault(REQUEST_ID_HEADER, request_id)
        return response

    def reject(
        self, exc: ReproError, method: str, path: str
    ) -> HttpResponse:
        """Transport-level refusal (oversized body, bad framing)."""
        request_id = new_request_id()
        with self._counter_lock:
            self.requests += 1
            self.errors += 1
        response = _error_response(
            ErrorEnvelope.from_exception(exc, request_id=request_id)
        )
        response.headers.setdefault(REQUEST_ID_HEADER, request_id)
        return response

    def abort_inflight(self, error: BaseException) -> int:
        """Fail every coalesced waiter (graceful drain)."""
        return self._flights.abort(error)

    # -- routing ---------------------------------------------------------
    def _route(self, request: HttpRequest) -> HttpResponse:
        parts = request.segments
        method = request.method.upper()
        count = self.server.count
        if parts == ["healthz"] and method == "GET":
            return self._healthz(request)
        if parts == ["stats"] and method == "GET":
            return self._stats(request)
        if parts == ["metrics"] and method == "GET":
            return self._metrics(request)
        if len(parts) == 3 and parts[0] == "diff" and method == "GET":
            return self._diff(request, parts[1], parts[2])
        if len(parts) == 2 and parts[0] == "specs" and method == "PUT":
            return self._broadcast(request)
        if len(parts) == 2 and parts[0] == "runs":
            return self._forward(
                shard_for_name(parts[1], count), request
            )
        if parts == ["prov", "import"] and method == "POST":
            name = request.query.get("name", "")
            worker = shard_for_name(name, count) if name else 0
            return self._forward(worker, request)
        if parts == ["matrix"] and method == "POST":
            return self._matrix(request)
        if parts == ["query"] and method == "POST":
            return self._query(request)
        # Everything else — spec/run listings, summaries, streaming,
        # unknown routes — is answered by worker 0 verbatim, envelope
        # and all.  (Streaming ingestion is deliberately unsharded:
        # session sequencing state lives in one hub.)
        return self._forward(0, request)

    # -- proxy plumbing ---------------------------------------------------
    def _forward(
        self,
        worker: int,
        request: HttpRequest,
        body: Optional[bytes] = None,
        retry: bool = True,
    ) -> HttpResponse:
        """One upstream round trip to ``worker``; retries one restart.

        A connection-level failure (worker crashed mid-request or the
        socket refused) waits for the supervisor to swap in a fresh
        incarnation, then retries *once*.  HTTP-level errors are not
        failures here — the worker's envelope is relayed verbatim.
        """
        with self._counter_lock:
            self.proxied += 1
        try:
            return self._roundtrip(worker, request, body)
        except (urllib.error.URLError, ConnectionError, OSError):
            if not retry:
                raise ServiceUnavailableError(
                    f"cluster worker {worker} is unavailable"
                ) from None
        self.server.wait_for_worker(worker)
        try:
            return self._roundtrip(worker, request, body)
        except (urllib.error.URLError, ConnectionError, OSError):
            raise ServiceUnavailableError(
                f"cluster worker {worker} is unavailable"
            ) from None

    def _roundtrip(
        self,
        worker: int,
        request: HttpRequest,
        body: Optional[bytes],
    ) -> HttpResponse:
        port = self.server.supervisor.port_of(worker)
        url = f"http://{self.server.worker_host}:{port}{request.path}"
        if request.query:
            url += "?" + urlencode(request.query)
        headers = {
            name: value
            for name, value in request.headers.items()
            if name not in _HOP_HEADERS
        }
        payload = body if body is not None else (request.body or None)
        upstream = urllib.request.Request(
            url,
            data=payload,
            method=request.method.upper(),
            headers=headers,
        )
        try:
            with urllib.request.urlopen(
                upstream, timeout=PROXY_TIMEOUT
            ) as response:
                return self._relay(
                    response.status,
                    dict(response.headers),
                    response.read(),
                )
        except urllib.error.HTTPError as exc:
            # Structured worker errors (404/409/413/...) and 304s are
            # answers, not transport failures: relay them untouched.
            return self._relay(exc.code, dict(exc.headers), exc.read())

    @staticmethod
    def _relay(
        status: int, headers: Dict[str, str], body: bytes
    ) -> HttpResponse:
        lowered = {
            name.lower(): value for name, value in headers.items()
        }
        relayed = {
            name: lowered[name.lower()]
            for name in _RELAY_HEADERS
            if name.lower() in lowered
        }
        return HttpResponse(
            status=status,
            body=body,
            content_type=lowered.get("content-type", JSON_TYPE),
            headers=relayed,
        )

    def _scatter(
        self,
        request: HttpRequest,
        bodies: Optional[List[Optional[bytes]]] = None,
    ) -> List[HttpResponse]:
        """The same request to every worker, concurrently."""
        count = self.server.count
        bodies = bodies if bodies is not None else [None] * count
        if count == 1:
            return [self._forward(0, request, body=bodies[0])]
        with ThreadPoolExecutor(max_workers=count) as pool:
            futures = [
                pool.submit(self._forward, i, request, bodies[i])
                for i in range(count)
            ]
            return [future.result() for future in futures]

    @staticmethod
    def _first_failure(
        responses: List[HttpResponse],
    ) -> Optional[HttpResponse]:
        for response in responses:
            if response.status != 200:
                return response
        return None

    # -- coalesced diff reads ---------------------------------------------
    def _diff(
        self, request: HttpRequest, run_a: str, run_b: str
    ) -> HttpResponse:
        worker = shard_for_pair(run_a, run_b, self.server.count)
        # Identical concurrent requests share one upstream round trip.
        # The key is everything that can change the response: path,
        # query (spec/cost), revalidation state, and the caller's
        # correlation ID (a coalesced response echoes its leader's).
        key = (
            request.path,
            tuple(sorted(request.query.items())),
            request.header("if-none-match"),
            request.header(REQUEST_ID_HEADER),
        )
        leader, flight = self._flights.begin(key)
        if not leader:
            with self._counter_lock:
                self.coalesced += 1
            shared = flight.result()
            # Followers get a copy: handle() mutates response headers.
            return HttpResponse(
                status=shared.status,
                body=shared.body,
                content_type=shared.content_type,
                headers=dict(shared.headers),
            )
        try:
            response = self._forward(worker, request)
        except BaseException as exc:
            self._flights.finish(flight, error=exc)
            raise
        self._flights.finish(flight, value=response)
        return response

    # -- broadcast writes --------------------------------------------------
    def _broadcast(self, request: HttpRequest) -> HttpResponse:
        """``PUT /specs/{name}``: every worker registers the spec."""
        responses = self._scatter(request)
        failure = self._first_failure(responses)
        return failure if failure is not None else responses[0]

    # -- scatter-gather: matrix -------------------------------------------
    def _matrix(self, request: HttpRequest) -> HttpResponse:
        body = request.json_body()
        if not isinstance(body, dict):
            raise ReproError("matrix request body must be an object")
        if "shard" in body:
            # A caller doing its own sharding talks to one worker.
            return self._forward(0, request)
        count = self.server.count
        bodies = [
            json.dumps(
                {**body, "shard": {"index": i, "count": count}}
            ).encode("utf8")
            for i in range(count)
        ]
        responses = self._scatter(request, bodies)
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        payloads = [r.json_payload() for r in responses]
        position = {
            name: i for i, name in enumerate(payloads[0]["runs"])
        }
        triples = [
            triple
            for payload in payloads
            for triple in payload["distances"]
        ]
        triples.sort(
            key=lambda t: (position[t[0]], position[t[1]])
        )
        merged = dict(payloads[0])
        merged["distances"] = triples
        return HttpResponse.json(merged)

    # -- scatter-gather: query --------------------------------------------
    def _query(self, request: HttpRequest) -> HttpResponse:
        body = request.json_body()
        if not isinstance(body, dict):
            raise ReproError("query request body must be an object")
        if "shard" in body:
            return self._forward(0, request)
        limit = body.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int):
                raise ReproError(
                    f"query 'limit' must be an integer, got {limit!r}"
                )
            if limit < 0:
                raise ReproError(f"limit must be >= 0, got {limit}")
        cursor = body.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise ReproError(
                f"query 'cursor' must be a string, got {cursor!r}"
            )
        offset = _decode_cursor(cursor)
        count = self.server.count
        # Workers evaluate their whole shard (no cursor, no limit);
        # pagination is re-applied on the merged, re-ordered stream.
        worker_body = {
            key: value
            for key, value in body.items()
            if key not in ("limit", "cursor")
        }
        bodies = [
            json.dumps(
                {**worker_body, "shard": {"index": i, "count": count}}
            ).encode("utf8")
            for i in range(count)
        ]
        responses = self._scatter(request, bodies)
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        payloads = [r.json_payload() for r in responses]
        position = self._pair_positions(body, payloads[0]["spec"])
        items = [
            item
            for payload in payloads
            for item in payload["items"]
        ]
        items.sort(
            key=lambda item: (
                position[item["run_a"]], position[item["run_b"]]
            )
        )
        total = sum(payload["total_matches"] for payload in payloads)
        end = len(items) if limit is None else min(
            offset + limit, len(items)
        )
        merged = dict(payloads[0])
        merged["total_matches"] = total
        merged["items"] = items[offset:end]
        merged["cursor"] = cursor
        merged["next_cursor"] = (
            encode_cursor(end) if end < total else None
        )
        return HttpResponse.json(merged)

    def _pair_positions(
        self, body: dict, spec_name: str
    ) -> Dict[str, int]:
        """Run-name → listing position, for re-ordering merged items.

        Pair enumeration order over any run subset is the
        lexicographic order of (first, second) listing positions;
        restricting to a subsequence preserves those comparisons, so
        positions in the *full* listing sort a merged shard stream
        into exact single-process order.  An explicit ``runs`` body
        parameter defines its own order and is used verbatim.
        """
        explicit = body.get("runs")
        if isinstance(explicit, list):
            return {str(name): i for i, name in enumerate(explicit)}
        listing = self._forward(
            0,
            HttpRequest(
                method="GET", path="/runs",
                query={"spec": spec_name},
            ),
        )
        if listing.status != 200:
            raise ReproError(
                "cluster could not list runs to merge query results"
            )
        names = listing.json_payload()["runs"]
        return {name: i for i, name in enumerate(names)}

    # -- aggregated health -------------------------------------------------
    def _healthz(self, request: HttpRequest) -> HttpResponse:
        supervisor = self.server.supervisor
        statuses = supervisor.statuses()
        alive = sum(1 for status in statuses if status["alive"])
        try:
            base = self._forward(0, request, retry=False)
            payload = (
                base.json_payload() if base.status == 200 else {}
            )
        except (ReproError, ValueError):
            payload = {}
        payload.setdefault("version", _package_version())
        payload.setdefault("wire_version", WIRE_VERSION)
        payload.setdefault("specifications", 0)
        payload["status"] = (
            "ok" if alive == self.server.count else "degraded"
        )
        payload["cluster"] = {
            "workers": self.server.count,
            "alive": alive,
            "restarts": supervisor.total_restarts(),
            "members": statuses,
        }
        return HttpResponse.json(
            payload,
            status=200 if alive else 503,
        )

    # -- aggregated stats --------------------------------------------------
    def _stats(self, request: HttpRequest) -> HttpResponse:
        responses = self._scatter(request)
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        payloads = [r.json_payload() for r in responses]
        counters: Dict[str, int] = {}
        for payload in payloads:
            for name, value in payload["counters"].items():
                counters[name] = counters.get(name, 0) + int(value)
        with self._counter_lock:
            counters["cluster_requests"] = self.requests
            counters["cluster_coalesced"] = self.coalesced
            counters["cluster_proxied"] = self.proxied
            counters["cluster_in_flight"] = self._in_flight
        counters["cluster_workers"] = self.server.count
        counters["cluster_worker_restarts"] = (
            self.server.supervisor.total_restarts()
        )
        merged = dict(payloads[0])
        merged["source"] = "cluster"
        merged["counters"] = counters
        merged["derived"] = self._derive(counters, payloads)
        return HttpResponse.json(merged)

    @staticmethod
    def _derive(
        counters: Dict[str, int], payloads: List[dict]
    ) -> Dict[str, float]:
        """Cluster-wide derived stats, from the *summed* counters.

        Ratios recompute from summed numerators and denominators (a
        mean of per-worker ratios would weight idle workers equally
        with busy ones); ``lock_wait_seconds`` is additive and sums.
        """

        def ratio(hits: int, lookups: int) -> float:
            return hits / lookups if lookups else 0.0

        lookups = (
            counters.get("memory_hits", 0)
            + counters.get("disk_hits", 0)
            + counters.get("misses", 0)
        )
        script_hits = (
            counters.get("script_memory_hits", 0)
            + counters.get("script_disk_hits", 0)
        )
        script_lookups = script_hits + counters.get("script_misses", 0)
        return {
            "memory_hit_ratio": ratio(
                counters.get("memory_hits", 0), lookups
            ),
            "disk_hit_ratio": ratio(
                counters.get("disk_hits", 0), lookups
            ),
            "script_hit_ratio": ratio(script_hits, script_lookups),
            "lock_wait_seconds": sum(
                float(p.get("derived", {}).get("lock_wait_seconds", 0.0))
                for p in payloads
            ),
        }

    # -- aggregated metrics ------------------------------------------------
    def _metrics(self, request: HttpRequest) -> HttpResponse:
        format_param = request.query.get("format", "").strip().lower()
        if format_param not in ("", "json", "prometheus", "text"):
            raise ReproError(
                f"unknown metrics format {format_param!r} "
                "(expected json, prometheus or text)"
            )
        wants_json = format_param == "json" or (
            not format_param
            and JSON_TYPE in request.header("accept")
        )
        scatter_request = HttpRequest(
            method="GET",
            path="/metrics",
            query={"format": "json"},
            headers=dict(request.headers),
        )
        responses = self._scatter(scatter_request)
        failure = self._first_failure(responses)
        if failure is not None:
            return failure
        merged: Dict[str, dict] = {}
        for index, response in enumerate(responses):
            snapshot = response.json_payload()["metrics"]
            for name, info in snapshot.items():
                entry = merged.setdefault(
                    name,
                    {
                        "type": info["type"],
                        "help": info["help"],
                        "samples": [],
                    },
                )
                for sample in info["samples"]:
                    labelled = dict(sample)
                    labelled["labels"] = {
                        **sample.get("labels", {}),
                        "worker": str(index),
                    }
                    entry["samples"].append(labelled)
        self._parent_metrics(merged)
        if wants_json:
            return HttpResponse.json(
                {"v": WIRE_VERSION, "metrics": merged}
            )
        return HttpResponse.text(
            _render_merged(merged), PROMETHEUS_TYPE
        )

    def _parent_metrics(self, merged: Dict[str, dict]) -> None:
        """The parent's own families, alongside the worker scrape."""
        with self._counter_lock:
            own = [
                ("cluster_workers", "gauge",
                 "Worker processes in the serving cluster.",
                 float(self.server.count)),
                ("cluster_worker_restarts_total", "counter",
                 "Worker processes restarted after a crash.",
                 float(self.server.supervisor.total_restarts())),
                ("cluster_proxied_requests_total", "counter",
                 "Requests the routing parent forwarded upstream.",
                 float(self.proxied)),
                ("cluster_coalesced_requests_total", "counter",
                 "Diff requests answered from a coalesced in-flight "
                 "round trip.",
                 float(self.coalesced)),
            ]
        for name, kind, help_text, value in own:
            merged[name] = {
                "type": kind,
                "help": help_text,
                "samples": [{"labels": {}, "value": value}],
            }


def _decode_cursor(cursor: Optional[str]) -> int:
    from repro.api_types import decode_cursor

    return decode_cursor(cursor)


def _render_merged(merged: Dict[str, dict]) -> str:
    """Prometheus text exposition 0.0.4 for a merged JSON snapshot.

    Mirrors :meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`
    sample-for-sample, with the injected ``worker`` labels in place.
    """
    lines: List[str] = []
    for name in sorted(merged):
        entry = merged[name]
        lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {entry['type']}")
        for sample in entry["samples"]:
            key = _label_key(sample.get("labels", {}))
            if entry["type"] == "histogram":
                for bound, cumulative in sample["buckets"].items():
                    lines.append(
                        f"{name}_bucket"
                        f"{_render_labels(key, [('le', bound)])}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(key)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_render_labels(key)} "
                    f"{sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(key)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


class ClusterServer:
    """``N`` sharded worker processes behind one routing socket.

    Drives exactly like :class:`~repro.service.server.DiffServer` —
    ``serve_forever()`` for the CLI, ``with ClusterServer(...) as s:``
    for tests — and speaks the same wire surface on :attr:`url`.
    """

    def __init__(
        self,
        root,
        config: Optional[ReproConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: Optional[int] = None,
    ):
        from http.server import ThreadingHTTPServer

        from repro.service.server import _make_handler

        self.config = config or ReproConfig()
        count = workers if workers is not None else self.config.workers
        if count < 1:
            raise ReproError(
                f"a cluster needs at least 1 worker, got {count}"
            )
        if not isinstance(self.config.backend, str):
            raise ReproError(
                "cluster serving requires the backend by name "
                "(a live ExecutorBackend instance cannot cross the "
                "worker process boundary)"
            )
        self.count = count
        self.worker_host = host if host != "0.0.0.0" else "127.0.0.1"
        configure_logging(
            level=self.config.log_level,
            format=self.config.log_format,
        )
        self.supervisor = WorkerSupervisor(
            root, self.config, count, host=self.worker_host
        )
        self.app = _ClusterApp(self)
        self.httpd = ThreadingHTTPServer(
            (host, port),
            _make_handler(self.app, self.config.max_body_bytes),
        )
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._workers_started = False

    # -- address -----------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- worker coordination ----------------------------------------------
    def _ensure_workers(self) -> None:
        if not self._workers_started:
            self.supervisor.start()
            self._workers_started = True

    def wait_for_worker(self, index: int) -> None:
        """Block (bounded) until shard ``index``'s worker looks alive."""
        deadline = time.monotonic() + RESTART_WAIT
        while time.monotonic() < deadline:
            statuses = self.supervisor.statuses()
            if any(
                s["index"] == index and s["alive"] for s in statuses
            ):
                return
            time.sleep(0.1)

    # -- lifecycle ---------------------------------------------------------
    def serve_forever(self) -> None:
        """Spawn workers and serve on the calling thread (blocking)."""
        self._ensure_workers()
        logger.info(
            "cluster serving %s with %d workers",
            self.url, self.count,
            extra={
                "host": self.host,
                "port": self.port,
                "workers": self.count,
            },
        )
        self.httpd.serve_forever()

    def start(self) -> "ClusterServer":
        """Spawn workers and serve on a background thread."""
        self._ensure_workers()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                name=f"repro-cluster-server:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, drain_timeout: float = 10.0) -> None:
        """Drain the parent, abort coalesced waiters, stop workers."""
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self.httpd.shutdown()
        deadline = time.monotonic() + max(0.0, drain_timeout)
        while (
            self.app.in_flight() > 0 and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        aborted = self.app.abort_inflight(
            ServiceUnavailableError(
                "cluster is shutting down; retry against a healthy "
                "instance"
            )
        )
        if aborted:
            logger.warning(
                "drain: aborted %d coalesced flight(s) with 503",
                aborted,
                extra={"aborted_flights": aborted},
            )
        self.supervisor.stop(drain_timeout=drain_timeout)
        logger.info(
            "cluster stopped",
            extra={
                "requests": self.app.requests,
                "errors": self.app.errors,
                "proxied": self.app.proxied,
                "coalesced": self.app.coalesced,
            },
        )
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ClusterServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_cluster(
    root,
    config: Optional[ReproConfig] = None,
    host: str = "127.0.0.1",
    port: int = 8321,
    workers: Optional[int] = None,
) -> None:
    """Blocking convenience, the ``repro serve --workers N`` body."""
    ClusterServer(
        root, config, host=host, port=port, workers=workers
    ).serve_forever()
