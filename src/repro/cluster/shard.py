"""Deterministic shard assignment for the cluster router.

Shards are assigned by SHA-256 of the run name — **not** ``hash()``,
which is salted per process (PYTHONHASHSEED) and would scatter the
same run to different workers across parent restarts and across the
parent/worker boundary.  Every process that imports this module agrees
on the mapping, so the parent can route without consulting workers and
a restarted worker re-owns exactly its old shard.

Pairs shard by their *undirected* canonical form (sorted names), so
``/diff/a/b`` and ``/diff/b/a`` land on the same worker and share its
cache — the same canonicalisation the distance cache itself uses.
"""

import hashlib
from typing import Tuple

__all__ = ["shard_for_name", "shard_for_pair", "pair_shard_key"]


def _stable_hash(text: str) -> int:
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def shard_for_name(name: str, count: int) -> int:
    """The shard index in ``[0, count)`` owning ``name``."""
    if count <= 0:
        raise ValueError(f"shard count must be positive: {count}")
    if count == 1:
        return 0
    return _stable_hash(name) % count


def pair_shard_key(name_a: str, name_b: str) -> str:
    """The canonical (undirected) routing key for a run pair."""
    first, second = sorted((name_a, name_b))
    return first + "\x00" + second


def shard_for_pair(name_a: str, name_b: str, count: int) -> int:
    """The shard index owning the undirected pair ``{a, b}``."""
    if count <= 0:
        raise ValueError(f"shard count must be positive: {count}")
    if count == 1:
        return 0
    return _stable_hash(pair_shard_key(name_a, name_b)) % count


def shard_spread(names: Tuple[str, ...], count: int) -> Tuple[int, ...]:
    """Per-shard run counts for a corpus listing (capacity planning)."""
    counts = [0] * count
    for name in names:
        counts[shard_for_name(name, count)] += 1
    return tuple(counts)
