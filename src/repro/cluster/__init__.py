"""Sharded multi-process serving cluster.

This package scales the HTTP diff service past one coarse lock in
three composable layers:

- :mod:`repro.cluster.singleflight` — a keyed in-flight table so
  concurrent identical computations (a thundering herd on one cold
  ``GET /diff/{a}/{b}``) share a single DP instead of racing N copies.
- :mod:`repro.cluster.results_log` — an append-only results log with
  copy-on-write snapshots, letting readers resolve distances without
  ever taking the writer lock.
- :mod:`repro.cluster.server` — a pre-forked multi-process cluster
  (``repro serve --workers N``): a parent process routes requests by
  fingerprint-hash shard (:mod:`repro.cluster.shard`) to per-worker
  HTTP servers supervised by :mod:`repro.cluster.supervisor`, with
  scatter-gather merging for the cross-shard surfaces (``/matrix``,
  ``/query``, ``/stats``, ``/metrics``).

The single-flight table and results log are also used by the
single-process server — they are what make ``DiffService`` read-mostly
instead of a monitor.  See ``docs/SCALING.md`` for the full design.
"""

from repro.cluster.results_log import ResultsLog
from repro.cluster.shard import shard_for_name, shard_for_pair
from repro.cluster.singleflight import SingleFlight

__all__ = [
    "ResultsLog",
    "SingleFlight",
    "shard_for_name",
    "shard_for_pair",
]
