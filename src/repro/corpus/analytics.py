"""Corpus analytics over pairwise distance matrices.

The paper's conclusions report that scientists want to "determine which
execution(s) differ from the majority of other executions, or whether
executions … cluster together".  These helpers answer both directly from
a ``{(name_a, name_b): distance}`` matrix as produced by
:meth:`repro.corpus.service.DiffService.distance_matrix`:

* :func:`medoid` — the most central run (minimum mean distance), the
  natural "representative execution" of a corpus;
* :func:`outliers` — runs ranked by *descending* mean distance, the
  "differs from the majority" view;
* :func:`k_nearest` — a run's nearest neighbours, the building block for
  the k-NN queries feeding PDiffView's clustering panes.

All functions treat the matrix as symmetric and accept either key order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

DistanceMatrix = Dict[Tuple[str, str], float]


def matrix_names(matrix: DistanceMatrix) -> List[str]:
    """All run names mentioned by a matrix, sorted."""
    names = set()
    for a, b in matrix:
        names.add(a)
        names.add(b)
    return sorted(names)


def pair_distance(matrix: DistanceMatrix, a: str, b: str) -> float:
    """Distance between two runs, accepting either key order."""
    if a == b:
        return 0.0
    if (a, b) in matrix:
        return matrix[(a, b)]
    if (b, a) in matrix:
        return matrix[(b, a)]
    raise ReproError(f"matrix has no entry for pair ({a!r}, {b!r})")


def mean_distances(
    matrix: DistanceMatrix, names: Optional[Sequence[str]] = None
) -> Dict[str, float]:
    """Mean distance from each run to every other run.

    ``names`` fixes the population (and validates completeness);
    defaults to every name in the matrix.  A singleton corpus has mean
    distance ``0.0`` by convention.
    """
    population = list(names) if names is not None else matrix_names(matrix)
    means: Dict[str, float] = {}
    for name in population:
        others = [o for o in population if o != name]
        if not others:
            means[name] = 0.0
            continue
        total = sum(pair_distance(matrix, name, o) for o in others)
        means[name] = total / len(others)
    return means


def medoid(
    matrix: DistanceMatrix, names: Optional[Sequence[str]] = None
) -> Tuple[str, float]:
    """The corpus medoid: ``(name, mean distance)`` with minimal mean.

    Ties break towards the lexicographically smallest name so results
    are deterministic across platforms.
    """
    means = mean_distances(matrix, names)
    if not means:
        raise ReproError("cannot take the medoid of an empty corpus")
    name = min(means, key=lambda n: (means[n], n))
    return name, means[name]


def outliers(
    matrix: DistanceMatrix,
    names: Optional[Sequence[str]] = None,
    top: Optional[int] = None,
) -> List[Tuple[str, float]]:
    """Runs ranked by descending mean distance to the rest of the corpus.

    The head of the list is the execution most unlike the others; pass
    ``top`` to truncate.  Ties break lexicographically.
    """
    means = mean_distances(matrix, names)
    ranked = sorted(means.items(), key=lambda item: (-item[1], item[0]))
    return ranked[:top] if top is not None else ranked


def k_nearest(
    matrix: DistanceMatrix,
    name: str,
    k: Optional[int] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Tuple[str, float]]:
    """``name``'s neighbours ordered by ascending distance.

    Returns ``(other, distance)`` pairs excluding ``name`` itself;
    ``k=None`` returns all neighbours (a full one-vs-many ranking).
    """
    population = list(names) if names is not None else matrix_names(matrix)
    if name not in population:
        raise ReproError(f"run {name!r} is not part of the matrix")
    ranked = sorted(
        (
            (other, pair_distance(matrix, name, other))
            for other in population
            if other != name
        ),
        key=lambda item: (item[1], item[0]),
    )
    return ranked[:k] if k is not None else ranked
