"""Two-tier caches: in-memory LRU over an on-disk JSON store.

The hot tier is a bounded LRU dictionary; the cold tier is a JSON file
written atomically through the :class:`~repro.io.store.WorkflowStore`
idiom.  Keys are content-addressed strings (see
:mod:`repro.corpus.fingerprint`), so cached entries survive run renames,
store moves, and process restarts — a cache is addressed by *content*,
never by file name.

:class:`TwoTierCache` implements the machinery for any JSON-serialisable
value type; subclasses pin down the value schema through the
:meth:`~TwoTierCache._decode` hook (a persisted value failing to decode
is simply a miss — everything here is derived, recomputable data).
:class:`DistanceCache` stores plain floats (edit distances);
:class:`~repro.corpus.script_cache.ScriptCache` stores serialised edit
scripts.

Writes go to the hot tier immediately and are batched to disk on
:meth:`TwoTierCache.flush` (the service flushes after every batch
operation); a crash between flushes loses only recomputable values.

Every public operation is thread-safe: one re-entrant lock per cache
serialises tier lookups, inserts, and flushes, so the HTTP service
layer can hammer one cache from many request threads without corrupting
the LRU order or losing batched writes.  Disk I/O inside ``flush`` runs
under the lock too — flushes are rare (once per batch), and the
merge-read + atomic write must be indivisible against concurrent puts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.io.store import atomic_write

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

import json


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    puts: int = 0
    flushes: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "flushes": self.flushes,
        }


class LRUCache:
    """A bounded least-recently-used mapping (insertion-ordered dict)."""

    def __init__(self, maxsize: int = 4096):
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[str, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str) -> Optional[Any]:
        """Return the cached value and mark it most recently used."""
        if key not in self._data:
            return None
        self._data.move_to_end(key)
        return self._data[key]

    def peek(self, key: str) -> Optional[Any]:
        """Return the cached value without touching recency order."""
        return self._data.get(key)

    def put(self, key: str, value: Any) -> None:
        """Insert/refresh a value, evicting the LRU entry when full."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def keys(self):
        return list(self._data)

    def clear(self) -> None:
        self._data.clear()


class TwoTierCache:
    """An :class:`LRUCache` hot tier over a JSON-file cold tier.

    Parameters
    ----------
    path:
        Location of the cold tier.  ``None`` disables persistence — the
        cache is then memory-only (used by tests and ephemeral services).
    maxsize:
        Bound of the hot tier.  The cold tier is unbounded.

    Subclasses override :meth:`_decode` to validate values read from
    disk (return ``None`` to reject — a rejected value is a miss) and
    :meth:`_encode` to canonicalise values on write.

    When a :class:`~repro.obs.metrics.MetricsRegistry` is supplied the
    cache also feeds the shared ``cache_*`` metric families, labelled
    with its ``name`` (``distance``, ``script``, ...) so one registry
    can carry every cache tier side by side.
    """

    def __init__(
        self,
        path: Optional[Path] = None,
        maxsize: int = 4096,
        stats: Optional[CacheStats] = None,
        metrics: Optional["MetricsRegistry"] = None,
        name: str = "cache",
    ):
        self.path = path
        self.maxsize = maxsize
        self.name = name
        self.stats = stats if stats is not None else CacheStats()
        self._memory = LRUCache(self.maxsize)
        self._disk: Dict[str, Any] = {}
        self._dirty: Dict[str, Any] = {}
        self._loaded = False
        self._lock = threading.RLock()
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False)
        # Collected, not event-driven: :class:`CacheStats` already
        # tallies every lookup under the cache lock, so the scrape
        # reads those exact numbers via callbacks and the hot path
        # pays nothing per hit.
        lookups = metrics.counter(
            "cache_lookups_total",
            "Cache lookups by cache tier and result.",
        )
        stats = self.stats
        lookups.set_function(
            lambda: stats.memory_hits,
            cache=self.name, result="memory_hit",
        )
        lookups.set_function(
            lambda: stats.disk_hits,
            cache=self.name, result="disk_hit",
        )
        lookups.set_function(
            lambda: stats.misses, cache=self.name, result="miss"
        )
        metrics.counter(
            "cache_puts_total", "Values written into a cache."
        ).set_function(lambda: stats.puts, cache=self.name)
        metrics.counter(
            "cache_flushes_total", "Cold-tier flushes per cache."
        ).set_function(lambda: stats.flushes, cache=self.name)

    # -- value schema hooks ---------------------------------------------
    def _decode(self, raw: Any) -> Optional[Any]:
        """Validate one raw JSON value from disk (``None`` rejects it)."""
        return raw

    def _encode(self, value: Any) -> Any:
        """Canonicalise a value before storing it."""
        return value

    # -- cold tier ------------------------------------------------------
    def _read_disk_file(self) -> Dict[str, Any]:
        """Decode the cold-tier file (corrupt or absent → empty)."""
        if self.path is None or not Path(self.path).exists():
            return {}
        try:
            raw = json.loads(Path(self.path).read_text(encoding="utf8"))
        except (OSError, ValueError):
            return {}  # derived data: a corrupt cache is an empty cache
        if not isinstance(raw, dict):
            return {}
        decoded: Dict[str, Any] = {}
        for key, value in raw.items():
            accepted = self._decode(value)
            if accepted is not None:
                decoded[str(key)] = accepted
        return decoded

    def _load_disk(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        self._disk = self._read_disk_file()

    def flush(self) -> None:
        """Persist batched writes; merges with concurrent writers' work."""
        with self._lock:
            if self.path is None or not self._dirty:
                self._dirty.clear()
                return
            self._load_disk()
            # Re-read so two services sharing a store lose neither's
            # entries.
            merged = self._read_disk_file()
            merged.update(self._disk)
            merged.update(self._dirty)
            self._disk = merged
            self._dirty = {}
            atomic_write(
                Path(self.path), json.dumps(merged, sort_keys=True)
            )
            self.stats.flushes += 1

    # -- lookups --------------------------------------------------------
    def get(self, key: str) -> Optional[Any]:
        """Two-tier lookup; disk hits are promoted into the hot tier."""
        with self._lock:
            value = self._memory.get(key)
            if value is not None:
                self.stats.memory_hits += 1
                return value
            self._load_disk()
            if key in self._dirty:
                self.stats.memory_hits += 1
                return self._dirty[key]
            if key in self._disk:
                self.stats.disk_hits += 1
                value = self._disk[key]
                self._memory.put(key, value)
                return value
            self.stats.misses += 1
            return None

    def peek(self, key: str) -> Optional[Any]:
        """A *non-counting* lookup: no stat updates, no LRU promotion.

        For opportunistic probes — the corpus service's triangle-bound
        pivots ask "do we happen to know this distance?" dozens of
        times per queried pair, and those probes must neither skew the
        hit/miss ratios operators alert on nor churn the hot tier's
        recency order.
        """
        with self._lock:
            value = self._memory.peek(key)
            if value is not None:
                return value
            self._load_disk()
            if key in self._dirty:
                return self._dirty[key]
            return self._disk.get(key)

    def put(self, key: str, value: Any) -> None:
        """Record a freshly computed value in both tiers (disk lazily)."""
        with self._lock:
            self.stats.puts += 1
            encoded = self._encode(value)
            self._memory.put(key, encoded)
            if self.path is not None:
                self._dirty[key] = encoded

    def __len__(self) -> int:
        """Distinct keys across all tiers (incl. memory-only entries)."""
        with self._lock:
            self._load_disk()
            return len(
                set(self._disk)
                | set(self._dirty)
                | set(self._memory.keys())
            )


class DistanceCache(TwoTierCache):
    """The distance cache: float values keyed by symmetric pair keys.

    Keys are the ``fingerprint|fingerprint|cost_key`` strings from
    :func:`repro.corpus.fingerprint.pair_key`.
    """

    def _decode(self, raw: Any) -> Optional[float]:
        if isinstance(raw, bool) or not isinstance(raw, (int, float)):
            return None
        return float(raw)

    def _encode(self, value: Any) -> float:
        return float(value)
