"""Content-addressed fingerprints for specifications and runs.

A fingerprint is a SHA-256 digest of a *canonical* serialisation of a
graph, chosen so that it keys distance caches safely:

* **Specifications** hash their annotated SP-tree ``T_G`` (Algorithm 1)
  together with the label-level edge multiset — unique node labels make
  this a complete, order-independent description of ``(G, F, L)``.
* **Runs** hash the specification fingerprint plus the annotated run
  tree's :meth:`~repro.sptree.nodes.SPTree.structure_key`, the canonical
  form realising the paper's ``≡`` relation: children of parallel and
  fork nodes are sorted, instance ids are erased, and only specification
  labels remain.  Two runs receive equal fingerprints **iff** they are
  equivalent (equal up to instance renaming and P/F reordering).

Because the edit-distance DP consumes exactly ``(spec, T_R1, T_R2, γ)``,
equal fingerprints guarantee equal distances to every third run under
every cost model — the property that makes fingerprints sound cache keys
and lets the corpus service skip re-parsing runs it has already seen.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.costs.base import CostModel
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

_ALGORITHM = "sha256"


def _digest(payload: str) -> str:
    return hashlib.new(_ALGORITHM, payload.encode("utf8")).hexdigest()


def spec_fingerprint(spec: WorkflowSpecification) -> str:
    """Canonical content hash of a specification ``(G, F, L)``.

    Independent of the specification's name, node ids, and node/edge
    insertion order: the hash covers the sorted label-level edge multiset
    and the annotated SP-tree's structure key (which encodes the fork and
    loop families through their F/L tree nodes).
    """
    labels = spec.graph.labels()
    edges = sorted(
        (labels[u], labels[v], count)
        for (u, v), count in spec.graph.edge_multiset().items()
    )
    payload = repr(("spec", tuple(edges), spec.tree.structure_key()))
    return _digest(payload)


def run_fingerprint(
    run: WorkflowRun, spec_digest: Optional[str] = None
) -> str:
    """Canonical content hash of a run, scoped to its specification.

    ``spec_digest`` lets callers that fingerprint many runs of one
    specification amortise the spec hash.  Equal fingerprints ⇔ the runs
    are ``≡``-equivalent and belong to content-identical specifications.
    """
    if spec_digest is None:
        spec_digest = spec_fingerprint(run.spec)
    payload = repr(("run", spec_digest, run.tree.structure_key()))
    return _digest(payload)


def cost_model_key(cost: CostModel) -> Optional[str]:
    """The cache-key component identifying a cost model, if it has one.

    Returns ``None`` for models that declare themselves uncacheable
    (e.g. :class:`~repro.costs.standard.CallableCost`), in which case
    every distance under that model must be computed fresh.
    """
    key = cost.cache_key
    return None if key is None else str(key)


def pair_key(
    fingerprint_a: str, fingerprint_b: str, cost_key: str
) -> str:
    """Symmetric cache key for one (run, run, cost-model) distance.

    ``δ`` is symmetric, so the two fingerprints are ordered before
    joining; the result is a flat string usable as a JSON object key.
    """
    low, high = sorted((fingerprint_a, fingerprint_b))
    return f"{low}|{high}|{cost_key}"


def script_key(
    fingerprint_from: str, fingerprint_to: str, cost_key: str
) -> str:
    """Directed cache key for one (run → run, cost-model) edit script.

    Unlike :func:`pair_key`, the operands are **not** sorted: an edit
    script transforms the first run into the second, and the reverse
    transformation is a different script (insertions and deletions swap
    roles and the operation order inverts).  The ``>`` separator makes
    the direction legible in persisted index files.
    """
    return f"{fingerprint_from}>{fingerprint_to}|{cost_key}"
