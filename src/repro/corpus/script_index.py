"""Persistent inverted index over cached edit scripts.

Maps query terms to the directed script keys
(:func:`repro.corpus.fingerprint.script_key`) of the diffs whose scripts
satisfy them, so the query engine can prune the candidate set of a
predicate **before** loading a single script:

* ``kind:<operation kind>`` — scripts containing at least one operation
  of that kind (insertion/deletion/expansion/contraction);
* ``label:<module label>`` — scripts with at least one operation whose
  path touches the label (terminals included);
* ``cost:<bucket>`` — scripts whose total cost (= distance) falls in a
  power-of-two bucket, supporting range predicates.

The index is *built incrementally as diffs are computed*: the
:class:`~repro.corpus.service.DiffService` calls :meth:`ScriptIndex.add`
whenever it computes (or first re-reads) a script, and the postings are
persisted under ``<store>/index/query/postings.json`` through the same
merge-on-flush discipline as the caches — concurrent services lose
neither's postings, and a corrupt file is an empty index to be rebuilt.

Pruning is **conservative by construction**: a term's posting list is a
superset test only — the engine always re-evaluates the full predicate
against the candidate scripts, so an over-approximate posting can cost
time but never correctness.

All public methods are thread-safe (one re-entrant lock per index):
candidate generation copies its result sets under the lock, so a
request thread can never iterate a posting set while another mutates
it in place.
"""

from __future__ import annotations

import math
import threading
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.io.store import WorkflowStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

INDEX_NAME = "postings"
INDEX_NAMESPACE = "query"
INDEX_VERSION = 1

KIND_PREFIX = "kind:"
LABEL_PREFIX = "label:"
COST_PREFIX = "cost:"


def cost_bucket(distance: float) -> int:
    """Power-of-two bucket of a script's total cost.

    Bucket 0 holds ``[0, 1)``; bucket ``k >= 1`` holds
    ``[2^(k-1), 2^k)``.  The function is monotone in ``distance``, which
    is what makes bucket-range pruning exact: every script with cost in
    ``[lo, hi]`` lands in a bucket between ``cost_bucket(lo)`` and
    ``cost_bucket(hi)``.
    """
    if distance < 1.0:
        return 0
    return int(math.floor(math.log2(distance))) + 1


def script_terms(record: dict) -> Set[str]:
    """The index terms of one encoded script record."""
    terms = {COST_PREFIX + str(cost_bucket(float(record["distance"])))}
    for op in record["ops"]:
        terms.add(KIND_PREFIX + str(op["kind"]))
        for label in op["path"]:
            terms.add(LABEL_PREFIX + str(label))
    return terms


class ScriptIndex:
    """The inverted index: term → posting set, plus a docs table.

    The docs table records ``key → (distance, op count)`` so pure
    cost/op-count predicates can prune without touching the script
    cache at all.
    """

    def __init__(
        self,
        store: WorkflowStore,
        persistent: bool = True,
        metrics: Optional["MetricsRegistry"] = None,
    ):
        self.store = store
        self.persistent = persistent
        self._postings: Dict[str, Set[str]] = {}
        self._docs: Dict[str, Tuple[float, int]] = {}
        self._dirty = False
        # Posting sets are mutated in place; every public read and
        # write holds this re-entrant lock so concurrent request
        # threads can never observe a half-updated index.
        self._lock = threading.RLock()
        if metrics is None:
            from repro.obs.metrics import MetricsRegistry

            metrics = MetricsRegistry(enabled=False)
        self._indexed_metric = metrics.counter(
            "script_index_additions_total",
            "Edit scripts newly indexed (first-time keys only).",
        )
        metrics.gauge(
            "script_index_size",
            "Distinct edit scripts currently indexed.",
        ).set_function(self.__len__)
        if persistent:
            self._ingest(
                store.load_index(INDEX_NAME, namespace=INDEX_NAMESPACE)
            )

    # -- persistence ----------------------------------------------------
    def _ingest(self, payload: Optional[dict]) -> None:
        """Merge one persisted payload into the in-memory maps."""
        if not payload or payload.get("version") != INDEX_VERSION:
            return
        postings = payload.get("postings")
        docs = payload.get("docs")
        if isinstance(postings, dict):
            for term, keys in postings.items():
                if isinstance(keys, list):
                    self._postings.setdefault(str(term), set()).update(
                        str(key) for key in keys
                    )
        if isinstance(docs, dict):
            for key, entry in docs.items():
                if (
                    isinstance(entry, list)
                    and len(entry) == 2
                    and isinstance(entry[0], (int, float))
                    and not isinstance(entry[0], bool)
                    and isinstance(entry[1], int)
                ):
                    self._docs.setdefault(
                        str(key), (float(entry[0]), entry[1])
                    )

    def flush(self) -> None:
        """Persist the index, merging with concurrent writers' postings."""
        with self._lock:
            if not self.persistent or not self._dirty:
                return
            # Re-ingest the on-disk state so two services sharing a
            # store union their postings instead of overwriting each
            # other.
            self._ingest(
                self.store.load_index(
                    INDEX_NAME, namespace=INDEX_NAMESPACE
                )
            )
            payload = {
                "version": INDEX_VERSION,
                "postings": {
                    term: sorted(keys)
                    for term, keys in self._postings.items()
                },
                "docs": {
                    key: [distance, ops]
                    for key, (distance, ops) in self._docs.items()
                },
            }
            self.store.save_index(
                INDEX_NAME, payload, namespace=INDEX_NAMESPACE
            )
            self._dirty = False

    # -- building -------------------------------------------------------
    def has(self, key: str) -> bool:
        with self._lock:
            return key in self._docs

    def add(self, key: str, record: dict) -> None:
        """Index one encoded script record (idempotent per key)."""
        with self._lock:
            if key in self._docs:
                return
            for term in script_terms(record):
                self._postings.setdefault(term, set()).add(key)
            self._docs[key] = (
                float(record["distance"]),
                len(record["ops"]),
            )
            self._dirty = True
            self._indexed_metric.inc()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def keys(self) -> Set[str]:
        with self._lock:
            return set(self._docs)

    def doc(self, key: str) -> Optional[Tuple[float, int]]:
        """``(distance, op count)`` of an indexed script, or ``None``."""
        with self._lock:
            return self._docs.get(key)

    def terms(self) -> List[str]:
        with self._lock:
            return sorted(self._postings)

    def postings(self, term: str) -> Set[str]:
        """The posting set of one term (a copy; empty when unknown)."""
        with self._lock:
            return set(self._postings.get(term, ()))

    # -- candidate generation (used by predicates) -----------------------
    def candidates_for_kinds(self, kinds: Iterable[str]) -> Set[str]:
        with self._lock:
            result: Set[str] = set()
            for kind in kinds:
                result |= self._postings.get(KIND_PREFIX + kind, set())
            return result

    def candidates_for_labels(self, labels: Iterable[str]) -> Set[str]:
        with self._lock:
            result: Set[str] = set()
            for label in labels:
                result |= self._postings.get(
                    LABEL_PREFIX + label, set()
                )
            return result

    def candidates_for_cost(
        self,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> Set[str]:
        low = cost_bucket(minimum) if minimum is not None else 0
        high = cost_bucket(maximum) if maximum is not None else None
        with self._lock:
            result: Set[str] = set()
            for term, keys in self._postings.items():
                if not term.startswith(COST_PREFIX):
                    continue
                bucket = int(term[len(COST_PREFIX):])
                if bucket < low:
                    continue
                if high is not None and bucket > high:
                    continue
                result |= keys
            return result

    def candidates_for_op_count(
        self,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
    ) -> Set[str]:
        with self._lock:
            return {
                key
                for key, (_, ops) in self._docs.items()
                if (minimum is None or ops >= minimum)
                and (maximum is None or ops <= maximum)
            }
