"""Corpus-scale differencing: fingerprints, caches, and the DiffService.

The :mod:`repro.corpus` package scales the paper's pairwise differ to
collections of runs — the "which executions cluster together" workload
from the paper's conclusions:

* :mod:`repro.corpus.fingerprint` — content-addressed run/spec hashes;
* :mod:`repro.corpus.index` — persistent fingerprint index over a store;
* :mod:`repro.corpus.cache` — two-tier (LRU + JSON) distance cache;
* :mod:`repro.corpus.service` — the :class:`DiffService` facade with
  parallel batch queries and incremental updates;
* :mod:`repro.corpus.script_cache` — persistent, directed edit-script
  cache (the scripts themselves, not just their costs);
* :mod:`repro.corpus.script_index` — inverted index over cached scripts
  (operation kinds, module labels, cost buckets → diff pairs);
* :mod:`repro.corpus.analytics` — medoid / outlier / k-NN queries over
  distance matrices.
"""

from repro.corpus.analytics import (
    k_nearest,
    matrix_names,
    mean_distances,
    medoid,
    outliers,
    pair_distance,
)
from repro.corpus.cache import (
    CacheStats,
    DistanceCache,
    LRUCache,
    TwoTierCache,
)
from repro.corpus.fingerprint import (
    cost_model_key,
    pair_key,
    run_fingerprint,
    script_key,
    spec_fingerprint,
)
from repro.corpus.index import FingerprintIndex
from repro.corpus.script_cache import (
    ScriptCache,
    ScriptRecord,
    decode_script,
    encode_script,
)
from repro.corpus.script_index import ScriptIndex, cost_bucket
from repro.corpus.service import DiffService

__all__ = [
    "DiffService",
    "FingerprintIndex",
    "DistanceCache",
    "TwoTierCache",
    "LRUCache",
    "CacheStats",
    "ScriptCache",
    "ScriptRecord",
    "ScriptIndex",
    "cost_bucket",
    "encode_script",
    "decode_script",
    "run_fingerprint",
    "spec_fingerprint",
    "cost_model_key",
    "pair_key",
    "script_key",
    "mean_distances",
    "medoid",
    "outliers",
    "k_nearest",
    "pair_distance",
    "matrix_names",
]
