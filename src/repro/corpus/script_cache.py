"""Persistent edit-script cache: the corpus layer's second cache tier.

The distance cache (:class:`~repro.corpus.cache.DistanceCache`) lets a
warm corpus answer *how far apart* two runs are without repaying the
O(|E|³) DP — but until this module, inspecting *what changed* (the edit
script itself) recomputed the whole diff every time.  :class:`ScriptCache`
persists serialised edit scripts under ``<store>/index/query/``, keyed by
the **directed** ``fingerprint>fingerprint|cost_key`` strings from
:func:`repro.corpus.fingerprint.script_key`: scripts transform run A into
run B, so unlike distances they are not symmetric.

A cached value is one :data:`~repro.core.edit_script.SCRIPT_SCHEMA_VERSION`
record::

    {"v": 1, "distance": <float>, "ops": [<PathOperation.to_dict()>, ...]}

Records with an unknown version or malformed shape are treated as misses
and recomputed — everything here is derived data.  :class:`ScriptRecord`
is the decoded in-memory form handed to callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.edit_script import (
    SCRIPT_SCHEMA_VERSION,
    PathOperation,
    operations_from_payload,
    operations_to_payload,
)
from repro.corpus.cache import TwoTierCache
from repro.errors import EditScriptError

#: File stem of the cold tier under ``<store>/index/query/``.
SCRIPTS_CACHE_NAME = "scripts"

#: Namespace (subdirectory of ``index/``) the query subsystem writes to.
QUERY_NAMESPACE = "query"


@dataclass
class ScriptRecord:
    """One cached edit script: the distance plus its operations.

    The operation sequence is the minimum-cost script in order; its
    total cost equals ``distance`` (Lemma 5.1).
    """

    distance: float
    operations: List[PathOperation]

    @property
    def op_count(self) -> int:
        return len(self.operations)

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for op in self.operations:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        breakdown = ", ".join(
            f"{count} {kind}" for kind, count in sorted(kinds.items())
        )
        return (
            f"distance {self.distance:g}"
            + (f" [{breakdown}]" if breakdown else " [empty script]")
        )


def encode_script(distance: float, operations) -> dict:
    """The JSON-safe cache record for one computed edit script."""
    return {
        "v": SCRIPT_SCHEMA_VERSION,
        "distance": float(distance),
        "ops": operations_to_payload(operations),
    }


def decode_script(raw: Any) -> Optional[ScriptRecord]:
    """Rebuild a :class:`ScriptRecord`, or ``None`` if ``raw`` is invalid."""
    if not _valid_record(raw):
        return None
    try:
        operations = operations_from_payload(raw["ops"])
    except EditScriptError:
        return None
    return ScriptRecord(
        distance=float(raw["distance"]), operations=operations
    )


def _valid_record(raw: Any) -> bool:
    """Cheap structural check (full decoding happens lazily on use)."""
    return (
        isinstance(raw, dict)
        and raw.get("v") == SCRIPT_SCHEMA_VERSION
        and isinstance(raw.get("distance"), (int, float))
        and not isinstance(raw.get("distance"), bool)
        and isinstance(raw.get("ops"), list)
        and all(isinstance(op, dict) for op in raw["ops"])
    )


class ScriptCache(TwoTierCache):
    """Two-tier cache of encoded script records (see module docstring).

    Values are the raw record dicts; callers decode through
    :func:`decode_script` (the service does this) so cache internals
    never leak mutable state into :class:`PathOperation` objects.
    """

    def _decode(self, raw: Any) -> Optional[dict]:
        return raw if _valid_record(raw) else None

    def _encode(self, value: Any) -> dict:
        if not _valid_record(value):
            raise EditScriptError(
                "script cache values must be encode_script() records"
            )
        return value
