"""The corpus diff service: cached, parallel, incremental differencing.

:class:`DiffService` turns the pairwise differ into a corpus-scale
engine over a :class:`~repro.io.store.WorkflowStore`:

* every stored run is fingerprinted **once** (persisted in
  ``<root>/index/fingerprints.json``, invalidated by file stamp);
* every computed distance lands in a two-tier cache keyed by
  ``(fingerprint, fingerprint, cost model)`` — a warm
  :meth:`distance_matrix` call performs **zero** edit-distance DPs;
* cold pairs fan out over a pluggable
  :class:`~repro.backends.base.ExecutorBackend` — the thread backend
  (default) overlaps the I/O share of a batch under the GIL, while the
  process backend pickles ``(run, run, cost)`` payloads to worker
  processes so the pure-Python O(|E|³) DP itself scales with cores;
* :meth:`add_run` is incremental: growing an ``N``-run corpus computes
  exactly the ``N`` new pairs, never the existing ``N x (N-1) / 2``;
* analytics (:meth:`medoid`, :meth:`outliers`, :meth:`nearest_runs`)
  answer the paper's "which executions cluster together / differ from
  the majority" queries on top of the cached matrix;
* :meth:`edit_script` extends the caching story from distances to the
  edit scripts themselves (directed, script-cache backed), feeding the
  inverted :class:`~repro.corpus.script_index.ScriptIndex` that the
  query engine (:mod:`repro.query`) prunes candidates with.

Runs whose fingerprints coincide are ``≡``-equivalent, so their
distance is 0 by the identity axiom — the service short-circuits such
pairs without any DP at all (and seeds the cache under the canonical
pair key, so the zero persists like any computed value).

Three further layers keep corpus-scale distance work off the DP:

* **packing lower bounds** (:mod:`repro.core.bounds`) priced from
  persisted leaf profiles let :meth:`nearest_runs` / :meth:`medoid` /
  :meth:`lower_bounds` discard candidates that provably cannot matter;
* **triangle-inequality bounds** over already-cached distances tighten
  those floors (and give :meth:`outliers` its ceilings) before any DP;
* one :class:`~repro.core.memo.SharedTables` per cold batch builds each
  run's deletion tables once instead of once per pair, and the
  ``kernel`` knob swaps the convolution inner loop for the vectorised
  numpy sweep — every layer bit-identical to the plain per-pair
  pure-Python evaluation.

``dp_skipped_by_bound`` / ``dp_pruned_by_triangle`` count the DPs these
layers avoided (exposed via :attr:`stats_counters` and ``/metrics``).

Concurrency is **read-mostly with single-flight coalescing** (the HTTP
service layer runs one thread per request):

* warm reads never touch the service lock — the caches carry their own
  fine-grained locks, and non-counting probes resolve through a
  lock-free copy-on-write :class:`~repro.cluster.results_log.ResultsLog`
  snapshot, so readers never block on a writer's DP batch;
* cold work is coalesced through a keyed
  :class:`~repro.cluster.singleflight.SingleFlight` table: concurrent
  callers needing the same content-addressed pair elect one *leader*
  whose single DP feeds every *follower* — a thundering herd on one
  cold ``GET /diff/{a}/{b}`` costs exactly one computation;
* the re-entrant service lock survives only as a **narrow** critical
  section around metadata (spec memo, fingerprint backfills) and
  result publishing (cache puts, counters) — it is never held across a
  backend dispatch or a flight wait, so a slow cold batch cannot stall
  warm traffic.

Deadlock discipline: a thread computes every flight it leads in one
backend batch (publishing all results) *before* waiting on any flight
it follows, and flights are never awaited while the service lock is
held.  ``abort_inflight`` lets a draining server fail pending flights
deterministically (followers surface a 503) instead of hanging past
the drain deadline.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backends.base import (
    ExecutorBackend,
    ThreadBackend,
    make_backend,
)
from repro.backends.work import (
    DistanceTask,
    ScriptTask,
    compute_distance,
    compute_script,
)
from repro.cluster.results_log import ResultsLog
from repro.cluster.singleflight import SingleFlight
from repro.core.bounds import (
    distance_lower_bound,
    is_sound_for,
    spec_max_op_leaves,
    triangle_lower_bound,
    triangle_upper_bound,
)
from repro.core.kernel import resolve_kernel
from repro.core.memo import SharedTables
from repro.corpus.analytics import medoid, outliers
from repro.corpus.cache import DistanceCache
from repro.corpus.fingerprint import (
    cost_model_key,
    pair_key,
    script_key,
    spec_fingerprint,
)
from repro.corpus.index import FingerprintIndex
from repro.corpus.script_cache import (
    QUERY_NAMESPACE,
    SCRIPTS_CACHE_NAME,
    ScriptCache,
    ScriptRecord,
    decode_script,
    encode_script,
)
from repro.corpus.script_index import ScriptIndex
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ConflictError, NotFoundError
from repro.io.store import WorkflowStore
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.runmeta import capture_run_metadata
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

DISTANCES_INDEX_FILE = "distances.json"

#: How many pivot runs a triangle-bound probe may consult per pair.
#: Probes are dict lookups against already-known distances — cheap, but
#: a query over N candidates must stay O(N · pivots), not O(N²).
_TRIANGLE_PIVOT_CAP = 8

_INF = float("inf")

#: Batch-size histogram buckets: powers of two up to a full matrix
#: sweep of a mid-sized corpus.
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0,
                  512.0, 1024.0)

logger = get_logger("corpus.service")


class DiffService:
    """Facade for corpus-scale differencing over one workflow store.

    Parameters
    ----------
    store:
        A :class:`WorkflowStore` or a path to create one at.  Sessions
        pass their existing store so service and session share files.
    max_workers:
        Parallelism for batch queries when ``backend`` is given by name
        (or defaulted).  ``None`` lets the backend pick for the
        machine; ``1`` forces serial execution (benchmarks compare the
        two).  Ignored when ``backend`` is an already-constructed
        instance, which carries its own width.
    cache_size:
        Bound of the in-memory distance-cache tier.
    persistent:
        When ``False``, neither distances nor fingerprints are written
        to disk — an ephemeral, memory-only service.
    backend:
        Where cold batches execute: a name from
        :data:`repro.backends.base.BACKEND_NAMES` or an
        :class:`~repro.backends.base.ExecutorBackend` instance.
        Defaults to the thread backend (the historical behaviour);
        ``"process"`` runs the DP itself on every core.
    kernel:
        Convolution kernel for the DP's deletion tables — a name from
        :data:`repro.core.kernel.KERNEL_NAMES`.  The default ``"auto"``
        uses numpy when importable and the bit-identical pure-Python
        loops otherwise.
    """

    def __init__(
        self,
        store,
        max_workers: Optional[int] = None,
        cache_size: int = 4096,
        persistent: bool = True,
        backend=None,
        metrics: Optional[MetricsRegistry] = None,
        kernel: Optional[str] = "auto",
    ):
        self.store = (
            store if isinstance(store, WorkflowStore) else WorkflowStore(store)
        )
        self.metrics = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self.max_workers = max_workers
        if backend is None:
            self.backend: ExecutorBackend = ThreadBackend(max_workers)
        elif isinstance(backend, ExecutorBackend):
            # An instance carries its own width; max_workers is the
            # by-name convenience knob and is documented as ignored.
            self.backend = backend
        else:
            self.backend = make_backend(backend, max_workers)
        self.kernel = resolve_kernel(kernel)
        self.persistent = persistent
        self.index = FingerprintIndex(self.store)
        cache_path = (
            self.store.index_dir / DISTANCES_INDEX_FILE
            if persistent
            else None
        )
        self.cache = DistanceCache(
            path=cache_path,
            maxsize=cache_size,
            metrics=self.metrics,
            name="distance",
        )
        script_path = (
            self.store.index_path(
                SCRIPTS_CACHE_NAME, namespace=QUERY_NAMESPACE
            )
            if persistent
            else None
        )
        self.script_cache = ScriptCache(
            path=script_path,
            maxsize=cache_size,
            metrics=self.metrics,
            name="script",
        )
        self.script_index = ScriptIndex(
            self.store, persistent=persistent, metrics=self.metrics
        )
        self.computed_pairs = 0
        self.computed_scripts = 0
        # DPs the fast path avoided: decided by the packing lower
        # bound alone, or needing a triangle-inequality bound on top.
        self.dp_skipped_by_bound = 0
        self.dp_pruned_by_triangle = 0
        self._specs: Dict[str, WorkflowSpecification] = {}
        #: Memoised ``L`` (max elementary-op leaf count) per spec name.
        self._max_op_leaves: Dict[str, int] = {}
        # The narrow service lock (see the module docstring): guards
        # metadata (spec memo, fingerprint backfills) and result
        # publishing (counters, cache puts) — never held across a
        # backend dispatch or a single-flight wait.  Re-entrant,
        # because brief sections nest (edit paths touch cached_script
        # while publishing).
        self._lock = threading.RLock()
        # Single-flight table: coalesces concurrent identical cold
        # computations onto one leader DP (keys are content-derived:
        # ("distance"|"script", content key)).
        self._flights = SingleFlight()
        # Copy-on-write results log: every published distance lands
        # here too, so non-counting probes (bound pivots, leader
        # double-checks) read lock-free.
        self._results_log = ResultsLog()
        #: Requests served from another caller's in-flight computation.
        self.coalesced_requests = 0
        # Contention accounting: plain floats guarded by the monitor
        # itself (updated only after a successful acquire), mirrored
        # into the registry for /metrics.
        self.lock_acquisitions = 0
        self.lock_wait_seconds = 0.0
        # Collected at scrape time from the plain attributes above —
        # the monitor pays two clock reads and two adds per
        # acquisition, never a metric-table update.
        self.metrics.counter(
            "lock_wait_seconds_total",
            "Seconds callers spent waiting on the service monitor.",
        ).set_function(lambda: self.lock_wait_seconds)
        self.metrics.counter(
            "lock_acquisitions_total",
            "Acquisitions of the service monitor.",
        ).set_function(lambda: self.lock_acquisitions)
        self._dp_metric = self.metrics.counter(
            "dp_invocations_total",
            "Edit-distance DP kernel invocations by kind.",
        )
        self.metrics.counter(
            "dp_skipped_by_bound_total",
            "DP invocations avoided by the packing lower bound.",
        ).set_function(lambda: self.dp_skipped_by_bound)
        self.metrics.counter(
            "dp_pruned_by_triangle_total",
            "DP invocations avoided by triangle-inequality bounds.",
        ).set_function(lambda: self.dp_pruned_by_triangle)
        self.metrics.counter(
            "singleflight_coalesced_total",
            "Requests served from another caller's in-flight DP.",
        ).set_function(lambda: self.coalesced_requests)
        self.metrics.counter(
            "results_log_entries_total",
            "Distances published to the copy-on-write results log.",
        ).set_function(self._results_log.entries)
        self._batch_metric = self.metrics.histogram(
            "dp_batch_size",
            "Cold DP tasks dispatched per backend batch.",
            buckets=_BATCH_BUCKETS,
        )
        self._backend_tasks_metric = self.metrics.counter(
            "backend_tasks_total",
            "Tasks handed to the execution backend.",
        )
        self._backend_busy_metric = self.metrics.counter(
            "backend_busy_seconds_total",
            "Wall-clock seconds spent inside backend batch dispatch.",
        )

    @contextmanager
    def _monitor(self):
        """Acquire the monitor, accounting for time spent waiting.

        Re-entrant acquisitions (the batch methods nest) are counted
        but wait ~0s — only genuine cross-thread contention accrues
        meaningful wait time, which is exactly what the
        ``lock_wait_seconds_total`` metric is for.
        """
        started = time.perf_counter()
        self._lock.acquire()
        waited = time.perf_counter() - started
        # We hold the monitor here, so the plain += updates are safe.
        self.lock_acquisitions += 1
        self.lock_wait_seconds += waited
        try:
            yield
        finally:
            self._lock.release()

    def abort_inflight(self, error: BaseException) -> int:
        """Fail every pending coalesced computation with ``error``.

        The graceful-drain hook: a stopping server calls this after
        its drain deadline so single-flight followers blocked on a
        leader that will never publish raise immediately (the HTTP
        layer maps :class:`~repro.errors.ServiceUnavailableError` to a
        deterministic 503) instead of hanging.  Returns the number of
        flights aborted.
        """
        return self._flights.abort(error)

    def inflight_computations(self) -> int:
        """Currently pending coalesced computations (drain logging)."""
        return self._flights.in_flight()

    # -- resolution -----------------------------------------------------
    def specification(self, spec_name: str) -> WorkflowSpecification:
        with self._monitor():
            if spec_name not in self._specs:
                self._specs[spec_name] = self.store.load_specification(
                    spec_name
                )
            return self._specs[spec_name]

    def invalidate_specification(self, spec_name: str) -> None:
        """Forget everything memoised for a specification.

        Must be called after re-registering a specification under an
        existing name (``PDiffViewSession.register_specification`` does
        this automatically): run fingerprints embed the spec digest, so
        all of them — and the runs parsed against the old object — are
        stale.  Cached *distances* need no invalidation; they are keyed
        by content, and the new fingerprints simply miss.
        """
        with self._monitor():
            self._specs.pop(spec_name, None)
            self.index.forget_spec(spec_name)

    def runs(self, spec_name: str) -> List[str]:
        return self.store.list_runs(spec_name)

    def load_run(self, spec_name: str, run_name: str) -> WorkflowRun:
        """A stored run, served through the parsed-run memo.

        The public face of the per-run parse cache the batch paths
        use — interactive callers (the workspace's ``run``/``view``)
        go through here so a corpus whose matrix is warm never
        re-parses a run's XML to view it.
        """
        return self._load_run(self.specification(spec_name), run_name)

    def _resolve(
        self, spec_name: str, run_names: Sequence[str]
    ) -> Tuple[WorkflowSpecification, Dict[str, str]]:
        """Fingerprint every named run (index hits skip XML parsing)."""
        spec = self.specification(spec_name)
        fingerprints = {
            name: self.index.fingerprint(spec, name) for name in run_names
        }
        return spec, fingerprints

    def fingerprints(
        self, spec_name: str, runs: Optional[Sequence[str]] = None
    ) -> Dict[str, str]:
        """``{run name: content fingerprint}`` for the named runs.

        The public face of the fingerprint index — the query engine maps
        name pairs onto content-addressed cache/index keys through this.
        ``runs=None`` covers every stored run of the specification.
        """
        with self._monitor():
            names = (
                list(runs) if runs is not None else self.runs(spec_name)
            )
            _, fingerprints = self._resolve(spec_name, names)
            if self.persistent:
                self.index.flush()
            return fingerprints

    def _load_run(
        self, spec: WorkflowSpecification, name: str
    ) -> WorkflowRun:
        """Load a run through the index memo (parse each XML once).

        The memo is checked and published under the GIL's atomic dict
        ops via peek/remember, with parsing kept outside any lock — a
        rare race parses the same XML twice; first writer wins.
        """
        run = self.index.peek_run(spec.name, name)
        if run is None:
            run = self.index.remember(
                self.store.load_run(spec, name), as_name=name
            )
        return run

    # -- lower bounds -----------------------------------------------------
    def _spec_op_ceiling(self, spec: WorkflowSpecification) -> int:
        """Memoised ``L``: the longest elementary path an edit op moves."""
        value = self._max_op_leaves.get(spec.name)
        if value is None:
            value = spec_max_op_leaves(spec)
            self._max_op_leaves[spec.name] = value
        return value

    def _packing_bounds(
        self,
        spec: WorkflowSpecification,
        pairs: Sequence[Tuple[str, str]],
        cost: CostModel,
    ) -> Dict[Tuple[str, str], float]:
        """Packing lower bounds per pair (empty when ``cost`` is outside
        the power family — every bound would be the vacuous 0.0)."""
        if not is_sound_for(cost):
            return {}
        ceiling = self._spec_op_ceiling(spec)
        profiles = {}
        for pair in pairs:
            for name in pair:
                if name not in profiles:
                    profiles[name] = self.index.profile(spec, name)
        return {
            (a, b): distance_lower_bound(
                profiles[a], profiles[b], ceiling, cost
            )
            for a, b in pairs
        }

    def lower_bounds(
        self,
        spec_name: str,
        pairs: Sequence[Tuple[str, str]],
        cost: Optional[CostModel] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Cheap, never-overestimating lower bounds on ``δ`` per pair.

        No DP runs: bounds come from persisted leaf profiles and the
        specification's op-length ceiling (:mod:`repro.core.bounds`).
        Pairs the module cannot reason about get the vacuous ``0.0``.
        The query engine gates script computation on these against
        predicate cost ceilings.
        """
        cost = cost or UnitCost()
        pair_list = [(a, b) for a, b in pairs]
        with self._monitor():
            spec = self.specification(spec_name)
            packing = self._packing_bounds(spec, pair_list, cost)
            if self.persistent:
                self.index.flush()  # profile backfills
        return {pair: packing.get(pair, 0.0) for pair in pair_list}

    def note_bound_skips(self, count: int) -> None:
        """Credit ``count`` DPs avoided via :meth:`lower_bounds`.

        The query engine gates cold script computation on packing
        bounds; those skips happen outside this service's own pruned
        paths, so the engine reports them here to keep the
        ``dp_skipped_by_bound`` counter the single ledger of
        bound-avoided DPs.
        """
        if count > 0:
            with self._monitor():
                self.dp_skipped_by_bound += count

    def _peek_exact(
        self,
        fingerprints: Dict[str, str],
        cost_key: Optional[str],
        a: str,
        b: str,
    ) -> Optional[float]:
        """An already-known exact distance, or ``None`` — non-counting.

        Bound probes ask this dozens of times per queried pair; they
        must not skew the hit/miss ratios operators alert on (the
        pairs a query actually returns still go through the counting
        cache path).
        """
        if a == b or fingerprints[a] == fingerprints[b]:
            return 0.0
        if cost_key is None:
            return None
        key = pair_key(fingerprints[a], fingerprints[b], cost_key)
        # Results-log snapshot first: a lock-free dict read, so bound
        # probes resolve without touching any cache lock a concurrent
        # writer might hold mid-batch.
        value = self._results_log.get(key)
        if value is None:
            value = self.cache.peek(key)
        return value if isinstance(value, float) else None

    @staticmethod
    def _known_adjacency(
        known: Dict[Tuple[str, str], float]
    ) -> Dict[str, Dict[str, float]]:
        """``{run: {neighbour: exact distance}}`` over known pairs."""
        adjacency: Dict[str, Dict[str, float]] = {}
        for (a, b), value in known.items():
            adjacency.setdefault(a, {})[b] = value
            adjacency.setdefault(b, {})[a] = value
        return adjacency

    @staticmethod
    def _triangle_floor(
        adjacency: Dict[str, Dict[str, float]], a: str, c: str
    ) -> float:
        """Best triangle *lower* bound on ``δ(a, c)`` via known pivots."""
        near_a = adjacency.get(a)
        near_c = adjacency.get(c)
        if not near_a or not near_c:
            return 0.0
        if len(near_c) < len(near_a):
            near_a, near_c = near_c, near_a
        best = 0.0
        probes = 0
        for pivot, first in near_a.items():
            second = near_c.get(pivot)
            if second is None:
                continue
            candidate = triangle_lower_bound(first, second)
            if candidate > best:
                best = candidate
            probes += 1
            if probes >= _TRIANGLE_PIVOT_CAP:
                break
        return best

    @staticmethod
    def _triangle_ceiling(
        adjacency: Dict[str, Dict[str, float]], a: str, c: str
    ) -> float:
        """Best triangle *upper* bound on ``δ(a, c)`` via known pivots.

        ``inf`` when no pivot knows both legs — an unbounded pair can
        never be pruned away by an upper-bound argument.
        """
        near_a = adjacency.get(a)
        near_c = adjacency.get(c)
        if not near_a or not near_c:
            return _INF
        if len(near_c) < len(near_a):
            near_a, near_c = near_c, near_a
        best = _INF
        probes = 0
        for pivot, first in near_a.items():
            second = near_c.get(pivot)
            if second is None:
                continue
            candidate = triangle_upper_bound(first, second)
            if candidate < best:
                best = candidate
            probes += 1
            if probes >= _TRIANGLE_PIVOT_CAP:
                break
        return best

    # -- batch computation ----------------------------------------------
    def _compute_pairs(
        self,
        spec: WorkflowSpecification,
        pairs: Sequence[Tuple[str, str]],
        fingerprints: Dict[str, str],
        cost: CostModel,
        bounds: Optional[Dict[Tuple[str, str], float]] = None,
        cutoff: Optional[float] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Cache-aware distances for name pairs; cold pairs fan out.

        Equal-fingerprint pairs short-circuit to 0; cacheable pairs are
        deduplicated by content key so two name pairs backed by the same
        graphs cost one DP; the remaining work runs on the configured
        :class:`~repro.backends.base.ExecutorBackend`.  In-process
        backends load runs *inside* the workers (threads overlap the
        XML-parsing share of a cold batch under the GIL); the process
        backend gets pre-resolved, picklable
        :class:`~repro.backends.work.DistanceTask` payloads, so its
        workers receive ready trees and never touch the store.

        Cold groups are coalesced through the single-flight table:
        concurrent callers needing the same content key elect one
        leader, whose batch computes the value once for everyone.  A
        caller leads *all* its cold keys in one dispatch, publishes
        them, and only then waits on keys other callers lead — the
        ordering that makes cross-caller waits deadlock-free.

        ``bounds``/``cutoff`` (from :meth:`nearest_runs`'s pruning
        pass) ship per-pair packing bounds and the threshold ``τ``
        into the workers; a worker whose bound strictly exceeds ``τ``
        skips its DP and returns ``inf``, which is credited to
        ``dp_skipped_by_bound``, never cached, and never coalesced
        (cutoff batches bypass the flight table — a gated ``inf`` is
        an answer to *this* query's ``τ``, not to the pair).
        """
        cost_key = cost_model_key(cost)
        use_flights = cost_key is not None and cutoff is None
        results: Dict[Tuple[str, str], float] = {}
        pending: Dict[str, List[Tuple[str, str]]] = {}
        seeded = False
        for a, b in pairs:
            if a == b:
                results[(a, b)] = 0.0
                continue
            if fingerprints[a] == fingerprints[b]:
                # ≡-equivalent runs: 0 by the identity axiom, no DP.
                # Seed the canonical pair key too — historically this
                # short-circuit bypassed the cache entirely, so the
                # zero never persisted, the lookup never counted, and
                # a later direct key probe (warm analytics, another
                # process) missed and re-derived it.
                if cost_key is not None:
                    key = pair_key(
                        fingerprints[a], fingerprints[b], cost_key
                    )
                    if self.cache.get(key) is None:
                        self.cache.put(key, 0.0)
                        self._results_log.append(key, 0.0)
                        seeded = True
                results[(a, b)] = 0.0
                continue
            if cost_key is None:
                # Uncacheable cost model: no cache traffic — but the
                # DP is symmetric-deterministic, so dedupe by the
                # *unordered* name pair within the batch (keying the
                # raw (a, b) ordering used to cost (a, b) and (b, a)
                # two DPs for one value).  No single-flight either:
                # without a stable content key there is nothing for
                # concurrent callers to rendezvous on.
                group = "\x00".join(sorted((a, b)))
                pending.setdefault(group, []).append((a, b))
                continue
            key = pair_key(fingerprints[a], fingerprints[b], cost_key)
            cached = self.cache.get(key)
            if cached is not None:
                results[(a, b)] = cached
            else:
                pending.setdefault(key, []).append((a, b))

        # Split the cold groups into flights we lead (ours to compute)
        # and flights another caller is already computing.
        led: List[Tuple[str, object]] = []
        followed: List[Tuple[str, object]] = []
        compute_groups: List[Tuple[str, List[Tuple[str, str]]]] = []
        for key, group in pending.items():
            if not use_flights:
                compute_groups.append((key, group))
                continue
            leader, flight = self._flights.begin(("distance", key))
            if not leader:
                followed.append((key, flight))
                continue
            # Double-check the results log: a prior leader may have
            # published between our counting cache miss and begin().
            # (Non-counting on purpose — the classification above is
            # the one accounted lookup per pair.)
            value = self._results_log.get(key)
            if value is not None:
                self._flights.finish(flight, value=value)
                for name_pair in group:
                    results[name_pair] = value
                continue
            led.append((key, flight))
            compute_groups.append((key, group))

        if compute_groups:
            directed = []
            for key, group in compute_groups:
                a, b = group[0]
                # Canonical DP direction: δ is symmetric mathematically
                # but the DP's float accumulation is not — δ(a, b) and
                # δ(b, a) can differ in the last ULP.  The cache key is
                # undirected, so always compute lexicographically
                # (= listing order, the direction every fresh
                # ``distance_matrix`` comparison uses); otherwise a
                # value cached by ``add_run``'s (existing, new) order
                # mismatches a later warm read bit-for-bit.
                # (Name order, *not* fingerprint order, on purpose:
                # fingerprint order would disagree with listing order
                # for roughly half of all ordinary pairs and reintroduce
                # the mismatch.  The residual corner — two name pairs of
                # ≡-duplicate runs sharing one content key with opposite
                # name orders — is inherent to content-keyed dedup: even
                # a fixed direction cannot make the DPs of two distinct
                # equivalent trees bit-identical.)
                if b < a:
                    a, b = b, a
                directed.append((a, b))

            def task(pair) -> DistanceTask:
                a, b = pair
                run_a = self._load_run(spec, a)
                run_b = self._load_run(spec, b)
                bound = 0.0
                if bounds is not None:
                    bound = bounds.get((a, b), bounds.get((b, a), 0.0))
                return DistanceTask(
                    run_a=run_a,
                    run_b=run_b,
                    cost=cost,
                    kernel=self.kernel,
                    # Alignment hoisted out of the per-pair worker
                    # (S3): both runs of a batch load through one spec
                    # object, which the identity check certifies — a
                    # run annotated elsewhere falls back to the old
                    # per-pair alignment.
                    assume_aligned=run_a.spec is run_b.spec,
                    bound=bound,
                    cutoff=cutoff,
                )

            backend_name = type(self.backend).__name__
            try:
                self._batch_metric.observe(len(directed))
                self._backend_tasks_metric.inc(
                    len(directed), backend=backend_name
                )
                dispatch_started = time.perf_counter()
                if self.backend.requires_pickling:
                    # Resolve every run here: workers get ready trees
                    # (and per-worker table memos — a chunk unpickles
                    # as one unit, so its pairs alias and share
                    # tables).
                    distances = self.backend.map(
                        compute_distance,
                        [task(pair) for pair in directed],
                    )
                else:
                    # Resolve inside the workers: threads overlap
                    # parsing.  One SharedTables for the whole batch —
                    # each run's deletion tables are built once, not
                    # once per pair.
                    shared = SharedTables(cost, kernel=self.kernel)
                    distances = self.backend.map(
                        lambda pair: compute_distance(task(pair), shared),
                        directed,
                    )
                self._backend_busy_metric.inc(
                    time.perf_counter() - dispatch_started,
                    backend=backend_name,
                )
            except BaseException as exc:
                # A leader that cannot publish must land its flights
                # with the failure, or followers hang forever.
                for _, flight in led:
                    self._flights.finish(flight, error=exc)
                raise

            # Publish: counters and cache puts under the narrow lock,
            # one results-log swap for the whole batch.
            flight_values: Dict[str, float] = {}
            published: List[Tuple[str, float]] = []
            performed = 0
            with self._monitor():
                for (key, group), value in zip(compute_groups, distances):
                    if cutoff is not None and value == _INF:
                        # The worker's bound gate skipped this DP.
                        self.dp_skipped_by_bound += 1
                        for name_pair in group:
                            results[name_pair] = _INF
                        continue
                    performed += 1
                    self.computed_pairs += 1
                    if cost_key is not None:
                        self.cache.put(key, value)
                        published.append((key, value))
                        flight_values[key] = value
                    for name_pair in group:
                        results[name_pair] = value
                self._dp_metric.inc(performed, kind="distance")
            if published:
                self._results_log.extend(published)
            for key, flight in led:
                self._flights.finish(flight, value=flight_values[key])
            logger.debug(
                "computed %d cold distance pairs", performed,
                extra={"batch_size": len(directed),
                       "backend": backend_name},
            )
            self._flush()
        elif seeded:
            # No cold DPs, but ≡ short-circuits seeded cache entries.
            self._flush()
        elif self.persistent:
            # Even an all-warm query may have refreshed fingerprints.
            self.index.flush()

        if followed:
            # Only after our own flights landed: wait on the leaders
            # of everyone else's (the deadlock-free ordering).
            with self._monitor():
                self.coalesced_requests += len(followed)
            for key, flight in followed:
                value = flight.result()
                for name_pair in pending[key]:
                    results[name_pair] = value
        return results

    def _flush(self) -> None:
        with self._monitor():
            if self.persistent:
                self.cache.flush()
                self.script_cache.flush()
                self.script_index.flush()
                self.index.flush()

    def flush(self) -> None:
        """Persist every dirty cache tier now (no-op when ephemeral).

        Query methods flush themselves; this exists for callers that
        batch with ``edit_scripts(..., flush=False)`` and settle once
        at the end.
        """
        self._flush()

    # -- queries ---------------------------------------------------------
    def distance(
        self,
        spec_name: str,
        run_a: str,
        run_b: str,
        cost: Optional[CostModel] = None,
    ) -> float:
        """Cached ``δ(run_a, run_b)`` between two stored runs."""
        cost = cost or UnitCost()
        spec, fingerprints = self._resolve(spec_name, [run_a, run_b])
        return self._compute_pairs(
            spec, [(run_a, run_b)], fingerprints, cost
        )[(run_a, run_b)]

    def distances(
        self,
        spec_name: str,
        pairs: Sequence[Tuple[str, str]],
        cost: Optional[CostModel] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Cached distances for an explicit list of name pairs.

        The batch analogue of :meth:`distance` — the query engine's
        group-vs-group divergence uses it to price only the within- and
        cross-group pairs it needs, never the full matrix.
        """
        cost = cost or UnitCost()
        pair_list = [(a, b) for a, b in pairs]
        names = sorted({name for pair in pair_list for name in pair})
        spec, fingerprints = self._resolve(spec_name, names)
        return self._compute_pairs(spec, pair_list, fingerprints, cost)

    def distance_matrix(
        self,
        spec_name: str,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> Dict[Tuple[str, str], float]:
        """All-pairs distances, ``{(run_a, run_b): distance}``.

        Keys are unordered pairs in listing order, matching the seed
        :meth:`PDiffViewSession.distance_matrix` exactly.  ``runs``
        restricts the corpus to a subset of stored run names.
        """
        cost = cost or UnitCost()
        names = list(runs) if runs is not None else self.runs(spec_name)
        spec, fingerprints = self._resolve(spec_name, names)
        pairs = [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
        ]
        return self._compute_pairs(spec, pairs, fingerprints, cost)

    def nearest_runs(
        self,
        spec_name: str,
        run_name: str,
        k: Optional[int] = None,
        cost: Optional[CostModel] = None,
    ) -> List[Tuple[str, float]]:
        """One-vs-many: ``run_name``'s neighbours by ascending distance.

        Computes (or recalls) only the ``N - 1`` distances involving
        ``run_name`` — never the full matrix — and, when ``k`` asks for
        a strict subset of the corpus, prunes candidates that provably
        cannot enter the top ``k``: a candidate whose lower bound
        (packing bound from leaf profiles, tightened by the triangle
        inequality over already-known distances) strictly exceeds the
        current ``k``-th best distance is skipped without a DP.  The
        returned ranking is bit-identical to the unpruned computation:
        skipped candidates sort strictly after position ``k``, and
        surviving candidates' distances come from the very same
        cache-or-DP path.
        """
        cost = cost or UnitCost()
        names = self.runs(spec_name)
        if run_name not in names:
            raise NotFoundError(
                f"no stored run {run_name!r} for specification "
                f"{spec_name!r}"
            )
        others = [other for other in names if other != run_name]
        pairs = [(run_name, other) for other in others]
        spec, fingerprints = self._resolve(spec_name, names)
        survivors, bounds, cutoff = pairs, None, None
        if k is not None and 0 < k < len(others):
            with self._monitor():
                survivors, bounds, cutoff = self._prune_nearest(
                    spec, fingerprints, run_name, pairs, k, cost,
                    # Process workers apply the packing gate themselves
                    # (the bound travels with the task); in-process
                    # backends keep the cheaper parent-side drop.
                    ship=self.backend.requires_pickling,
                )
        distances = self._compute_pairs(
            spec, survivors, fingerprints, cost,
            bounds=bounds, cutoff=cutoff,
        )
        ranked = sorted(
            ((other, distances[(run_name, other)]) for _, other in survivors),
            key=lambda item: (item[1], item[0]),
        )
        return ranked[:k] if k is not None else ranked

    def _prune_nearest(
        self,
        spec: WorkflowSpecification,
        fingerprints: Dict[str, str],
        run_name: str,
        pairs: List[Tuple[str, str]],
        k: int,
        cost: CostModel,
        ship: bool = False,
    ) -> Tuple[
        List[Tuple[str, str]],
        Optional[Dict[Tuple[str, str], float]],
        Optional[float],
    ]:
        """``(survivors, bounds, cutoff)`` for a top-``k`` query
        (caller holds the service lock).

        Non-counting probes split the pairs into already-known and
        unknown; with at least ``k`` known distances the ``k``-th best
        becomes the pruning threshold ``τ``, and every unknown pair
        whose lower bound *strictly* exceeds ``τ`` cannot enter the
        ranking (its true distance is ≥ the bound > τ ≥ the final
        ``k``-th distance — not even on a tie).  The survivors keep
        the original listing order, and the known pairs re-enter
        through the ordinary counting cache path, so hit statistics
        match the unpruned query's.

        With ``ship=False`` packing-doomed pairs are dropped here and
        credited to ``dp_skipped_by_bound`` immediately; with
        ``ship=True`` (process backends) they *stay* in the batch and
        the returned ``(bounds, τ)`` travel with the tasks so each
        worker applies the same strict gate in its own address space —
        the skip is credited when the worker's ``inf`` comes back.
        Triangle pruning always happens parent-side: it needs the
        adjacency of every known distance, which workers don't have.
        """
        cost_key = cost_model_key(cost)
        known: Dict[Tuple[str, str], float] = {}
        unknown: List[Tuple[str, str]] = []
        for pair in pairs:
            exact = self._peek_exact(
                fingerprints, cost_key, pair[0], pair[1]
            )
            if exact is None:
                unknown.append(pair)
            else:
                known[pair] = exact
        if len(known) < k or not unknown:
            return pairs, None, None
        tau = sorted(known.values())[k - 1]
        packing = self._packing_bounds(spec, unknown, cost)
        shipping = ship and bool(packing)
        adjacency: Optional[Dict[str, Dict[str, float]]] = None
        dropped = set()
        for pair in unknown:
            bound = packing.get(pair, 0.0)
            if bound > tau:
                if shipping:
                    continue  # the worker-side gate skips its DP
                self.dp_skipped_by_bound += 1
                dropped.add(pair)
                continue
            if adjacency is None:
                # Pivot adjacency over *everything* already known —
                # cheap cache peeks, built once per query on demand.
                adjacency = self._known_pair_graph(
                    fingerprints, cost_key, list(fingerprints)
                )
            floor = self._triangle_floor(adjacency, pair[0], pair[1])
            if floor > tau:
                self.dp_pruned_by_triangle += 1
                dropped.add(pair)
        if dropped:
            pairs = [pair for pair in pairs if pair not in dropped]
        if shipping:
            return pairs, packing, tau
        return pairs, None, None

    def _known_pair_graph(
        self,
        fingerprints: Dict[str, str],
        cost_key: Optional[str],
        names: Sequence[str],
    ) -> Dict[str, Dict[str, float]]:
        """Adjacency of every already-known exact distance among
        ``names`` (non-counting peeks only; no DP, no stat traffic)."""
        known: Dict[Tuple[str, str], float] = {}
        ordered = list(names)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                exact = self._peek_exact(fingerprints, cost_key, a, b)
                if exact is not None:
                    known[(a, b)] = exact
        return self._known_adjacency(known)

    # -- edit scripts -----------------------------------------------------
    def cached_script(self, key: str) -> Optional[ScriptRecord]:
        """The decoded script cached under a directed key, or ``None``.

        Re-reading a script also backfills the inverted index (a cache
        file can outlive a deleted index file) — any path that touches a
        script keeps the index complete.
        """
        with self._monitor():
            raw = self.script_cache.get(key)
            if raw is None:
                return None
            record = decode_script(raw)
            if record is None:
                return None
            if not self.script_index.has(key):
                self.script_index.add(key, raw)
            return record

    def edit_script(
        self,
        spec_name: str,
        run_a: str,
        run_b: str,
        cost: Optional[CostModel] = None,
    ) -> ScriptRecord:
        """The cached minimum-cost edit script from ``run_a`` to ``run_b``.

        On a miss this pays one full :func:`repro.core.api.diff_runs`
        (DP + mapping backtrace + script generation), then persists the
        serialised script in the script cache, feeds the inverted index,
        and — since a script's total cost *is* the distance — seeds the
        distance cache for free.  Scripts are directed: ``(a, b)`` and
        ``(b, a)`` are distinct cache entries.
        """
        return self.edit_scripts(spec_name, [(run_a, run_b)], cost)[
            (run_a, run_b)
        ]

    def edit_scripts(
        self,
        spec_name: str,
        pairs: Sequence[Tuple[str, str]],
        cost: Optional[CostModel] = None,
        flush: bool = True,
    ) -> Dict[Tuple[str, str], ScriptRecord]:
        """Cached edit scripts for a batch of directed name pairs.

        The batch analogue of :meth:`edit_script` — one flush for the
        whole batch instead of one per computed script, which is what
        keeps corpus ingest linear in the number of pairs (a per-script
        flush would rewrite the growing cache file quadratically).
        Callers that chunk one logical sweep into many batches (the
        workspace's streaming ``diff_many``) pass ``flush=False`` per
        chunk and call :meth:`flush` once at the end, for the same
        reason.
        Content-duplicate pairs cost one diff (cold work is deduped by
        directed content key before dispatch), and the cold diffs of a
        batch fan out as :class:`~repro.backends.work.ScriptTask`
        payloads on the configured backend — batch script generation
        parallelises exactly like the distance sweeps.  Cold groups
        coalesce through the single-flight table keyed on the directed
        content key, so concurrent identical ``GET /diff`` requests
        share one diff: the leader computes and publishes; followers
        receive the same operations (as their own deep copies — script
        records are mutable).
        """
        cost = cost or UnitCost()
        pair_list = [(a, b) for a, b in pairs]
        names = sorted({name for pair in pair_list for name in pair})
        spec, fingerprints = self._resolve(spec_name, names)
        cost_key = cost_model_key(cost)
        results: Dict[Tuple[str, str], ScriptRecord] = {}
        # Cold work, deduped: one entry per distinct directed content
        # key (or per directed name pair under uncacheable costs — the
        # DP is deterministic, so duplicates would only repeat it).
        # ``keys`` records the cache key of each cold group's
        # representative pair for the post-dispatch put/seed step.
        keys: Dict[Tuple[str, str], Optional[str]] = {}
        cold: Dict[object, List[Tuple[str, str]]] = {}
        for run_a, run_b in pair_list:
            key = None
            if cost_key is not None:
                key = script_key(
                    fingerprints[run_a], fingerprints[run_b], cost_key
                )
                record = self.cached_script(key)
                if record is not None:
                    results[(run_a, run_b)] = record
                    continue
            keys[(run_a, run_b)] = key
            cold.setdefault(
                key if key is not None else (run_a, run_b), []
            ).append((run_a, run_b))

        # Lead-or-follow each cold group (content-keyed groups only —
        # uncacheable costs have no rendezvous key, see above).
        led: List[Tuple[object, object]] = []
        followed: List[Tuple[object, object]] = []
        ordered: List[Tuple[object, List[Tuple[str, str]]]] = []
        for key, group in cold.items():
            if cost_key is None:
                ordered.append((key, group))
                continue
            leader, flight = self._flights.begin(("script", key))
            if not leader:
                followed.append((key, flight))
                continue
            # Double-check without counting: another leader may have
            # landed between our cached_script miss and begin().
            raw = self.script_cache.peek(key)
            record = decode_script(raw) if raw is not None else None
            if record is not None:
                self._flights.finish(
                    flight,
                    value=(record.distance, record.operations),
                )
                for name_pair in group:
                    results[name_pair] = ScriptRecord(
                        distance=record.distance,
                        operations=[
                            dataclasses.replace(op)
                            for op in record.operations
                        ],
                    )
                continue
            led.append((key, flight))
            ordered.append((key, group))

        if ordered:
            def task(group) -> ScriptTask:
                return ScriptTask(
                    run_a=self._load_run(spec, group[0][0]),
                    run_b=self._load_run(spec, group[0][1]),
                    cost=cost,
                    kernel=self.kernel,
                )

            backend_name = type(self.backend).__name__
            try:
                self._batch_metric.observe(len(ordered))
                self._backend_tasks_metric.inc(
                    len(ordered), backend=backend_name
                )
                dispatch_started = time.perf_counter()
                if self.backend.requires_pickling:
                    outcomes = self.backend.map(
                        compute_script,
                        [task(group) for _, group in ordered],
                    )
                else:
                    shared = SharedTables(cost, kernel=self.kernel)
                    outcomes = self.backend.map(
                        lambda item: compute_script(task(item[1]), shared),
                        ordered,
                    )
                self._backend_busy_metric.inc(
                    time.perf_counter() - dispatch_started,
                    backend=backend_name,
                )
            except BaseException as exc:
                for _, flight in led:
                    self._flights.finish(flight, error=exc)
                raise
            self._dp_metric.inc(len(ordered), kind="script")
            logger.debug(
                "computed %d cold edit scripts", len(ordered),
                extra={"batch_size": len(ordered),
                       "backend": backend_name},
            )
            flight_values: Dict[object, Tuple[float, list]] = {}
            published: List[Tuple[str, float]] = []
            with self._monitor():
                for (group_key, group), (distance, operations) in zip(
                    ordered, outcomes
                ):
                    self.computed_scripts += 1
                    record = ScriptRecord(
                        distance=distance, operations=list(operations)
                    )
                    for run_a, run_b in group:
                        # Every pair gets its own record with its own
                        # operation objects (PathOperation is a mutable
                        # dataclass): deduped pairs must not alias any
                        # mutable result state, matching the independent
                        # per-pair decodes of the cache-hit path.
                        results[(run_a, run_b)] = ScriptRecord(
                            distance=record.distance,
                            operations=[
                                dataclasses.replace(op)
                                for op in record.operations
                            ],
                        )
                    run_a, run_b = group[0]
                    key = keys[(run_a, run_b)]
                    if key is not None:
                        raw = encode_script(
                            record.distance, record.operations
                        )
                        self.script_cache.put(key, raw)
                        self.script_index.add(key, raw)
                        flight_values[key] = (
                            record.distance, record.operations
                        )
                        if run_a <= run_b:
                            # Seed the (undirected) distance cache only
                            # from the canonical direction — the same one
                            # ``_compute_pairs`` uses — so every cached
                            # distance is bit-identical to a fresh
                            # listing-order computation.
                            dist_key = pair_key(
                                fingerprints[run_a],
                                fingerprints[run_b],
                                cost_key,
                            )
                            self.cache.put(dist_key, record.distance)
                            published.append(
                                (dist_key, record.distance)
                            )
            if published:
                self._results_log.extend(published)
            for key, flight in led:
                self._flights.finish(flight, value=flight_values[key])

        if followed:
            # Our own flights are landed; now collect everyone else's.
            with self._monitor():
                self.coalesced_requests += len(followed)
            for key, flight in followed:
                distance, operations = flight.result()
                for run_a, run_b in cold[key]:
                    results[(run_a, run_b)] = ScriptRecord(
                        distance=distance,
                        operations=[
                            dataclasses.replace(op)
                            for op in operations
                        ],
                    )
        if flush:
            self._flush()
        return results

    # -- incremental updates ----------------------------------------------
    def add_run(
        self,
        run: WorkflowRun,
        cost: Optional[CostModel] = None,
        meta=None,
    ) -> Dict[Tuple[str, str], float]:
        """Persist ``run`` and compute only its distances to the corpus.

        On an ``N``-run corpus this performs at most ``N`` new DPs (the
        pairs pairing the new run with each existing one); the existing
        ``N x (N-1) / 2`` matrix is untouched.  Returns the new pairs as
        ``{(existing_name, new_name): distance}``.

        ``meta`` is the run's operational account
        (:class:`~repro.obs.runmeta.RunMetadata`); omitted, the current
        context is captured at save time.
        """
        cost = cost or UnitCost()
        # Setup (conflict check, spec adoption, save, fingerprinting)
        # under the narrow lock; the distance batch itself runs
        # unlocked so concurrent readers — and other ingests' DPs —
        # proceed while this run's pairs compute.
        with self._monitor():
            spec, run, fingerprints, pairs = self._adopt_run(run, meta)
        results = self._compute_pairs(spec, pairs, fingerprints, cost)
        self._flush()
        return results

    def _adopt_run(self, run: WorkflowRun, meta=None):
        """Persist ``run`` and return its spec, fingerprints, and the
        new (existing, new) pairs; caller holds the service lock."""
        spec = run.spec
        known = self._specs.get(spec.name)
        if known is None and self.store.has_specification(spec.name):
            known = self.store.load_specification(spec.name)
        if known is not None and known is not spec:
            # Same name, different content would mix runs of two
            # specifications in one directory and mint fingerprints
            # under the wrong spec digest — refuse up front.
            if spec_fingerprint(known) != spec_fingerprint(spec):
                raise ConflictError(
                    f"a different specification named {spec.name!r} "
                    "already exists in this corpus; re-register it "
                    "first if the change is intentional"
                )
        if spec.name not in self._specs:
            # Adopt the run's spec object so later loads agree with it.
            self._specs[spec.name] = spec
        elif self._specs[spec.name] is not spec:
            # Same content, different object (the fingerprints matched
            # above): re-annotate against the adopted spec so every
            # memoised run of a corpus shares one spec object — the
            # invariant that lets batch workers skip per-pair
            # alignment and share subtree identities.
            spec = self._specs[spec.name]
            run = WorkflowRun(spec, run.graph, name=run.name)
        if not self.store.has_specification(spec.name):
            # First run of a never-stored spec: persist the spec too,
            # or the corpus would be unreadable to other processes.
            self.store.save_specification(spec)
        existing = [
            name for name in self.runs(spec.name) if name != run.name
        ]
        self.store.save_run(run, meta=meta)
        self.index.record(run)
        fingerprints = {run.name: self.index.fingerprint(spec, run.name)}
        for name in existing:
            fingerprints[name] = self.index.fingerprint(spec, name)
        pairs = [(name, run.name) for name in existing]
        return spec, run, fingerprints, pairs

    def add_prov_document(
        self,
        source,
        run_name: str = "",
        spec_name: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ):
        """Import a PROV-JSON/OPM document and fold it into the corpus.

        The interchange layer turns the document into a validated run
        (exactly, via an embedded plan, or through SP-ization — see
        :func:`repro.interchange.convert.import_document`);
        :meth:`add_run` then persists it and computes only the new
        distance pairs, so imported runs flow straight into the
        fingerprint index, distance cache, and script index like
        native ones.  Returns ``(import_result, new_pair_distances)``.
        """
        from repro.interchange.convert import import_document
        from repro.obs.runmeta import _utc_now

        started = _utc_now()
        result = import_document(
            source, run_name=run_name, spec_name=spec_name
        )
        distances = self.add_run(
            result.run,
            cost=cost,
            meta=capture_run_metadata(
                origin="prov-import", started=started
            ),
        )
        return result, distances

    # -- analytics ---------------------------------------------------------
    def medoid(
        self, spec_name: str, cost: Optional[CostModel] = None
    ) -> Tuple[str, float]:
        """The corpus's most central run, ``(name, mean distance)``.

        When the cost model supports lower bounds, candidates whose
        bounded mean distance strictly exceeds the best exact mean seen
        so far are skipped without computing their row of the matrix —
        the winner (including its exact mean and the lexicographic tie
        break) is bit-identical to the full-matrix evaluation, because
        a skipped candidate's true mean strictly exceeds the returned
        one.
        """
        cost = cost or UnitCost()
        # One listing snapshot for both matrix and analytics, so a run
        # saved concurrently can't appear in one but not the other.
        names = self.runs(spec_name)
        if len(names) < 3 or not is_sound_for(cost):
            matrix = self.distance_matrix(
                spec_name, cost=cost, runs=names
            )
            return medoid(matrix, names=names)
        spec, fingerprints = self._resolve(spec_name, names)
        cost_key = cost_model_key(cost)
        with self._monitor():
            adjacency = self._known_pair_graph(
                fingerprints, cost_key, names
            )
            unknown = [
                (a, b)
                for i, a in enumerate(names)
                for b in names[i + 1:]
                if b not in adjacency.get(a, {})
            ]
            packing = self._packing_bounds(spec, unknown, cost)

        def pair_floor(a: str, b: str) -> Tuple[float, bool]:
            """(lower bound, needed triangle?) for one pair."""
            exact = adjacency.get(a, {}).get(b)
            if exact is not None:
                return exact, False
            key = (a, b) if (a, b) in packing else (b, a)
            bound = packing.get(key, 0.0)
            floor = self._triangle_floor(adjacency, a, b)
            return max(bound, floor), floor > bound

        # Mean bounds in mean_distances' exact arithmetic (same
        # summation order, same division) — float addition is
        # monotone, so a sum of per-pair lower bounds stays a
        # lower bound of the identically-ordered sum of distances.
        floors: Dict[str, float] = {}
        used_triangle: Dict[str, bool] = {}
        for name in names:
            others = [o for o in names if o != name]
            parts = [pair_floor(name, o) for o in others]
            floors[name] = sum(p[0] for p in parts) / len(others)
            used_triangle[name] = any(p[1] for p in parts)

        best: Optional[Tuple[float, str]] = None
        skipped: Dict[str, bool] = {}
        for name in sorted(names, key=lambda n: (floors[n], n)):
            if best is not None and floors[name] > best[0]:
                skipped[name] = used_triangle[name]
                continue
            others = [o for o in names if o != name]
            row = self._compute_pairs(
                spec,
                [(name, o) for o in others],
                fingerprints,
                cost,
            )
            mean = sum(row[(name, o)] for o in others) / len(others)
            if best is None or (mean, name) < best:
                best = (mean, name)
        with self._monitor():
            self._count_avoided_pairs(unknown, skipped)
        assert best is not None  # names is non-empty here
        return best[1], best[0]

    def _count_avoided_pairs(
        self,
        unknown: Sequence[Tuple[str, str]],
        skipped: Dict[str, bool],
    ) -> None:
        """Attribute never-computed pairs to the skip counters.

        A pair is avoided when *both* endpoints' candidate evaluations
        were skipped; it lands on the triangle counter when either
        skip needed a triangle bound, on the packing counter otherwise.
        """
        for a, b in unknown:
            if a in skipped and b in skipped:
                if skipped[a] or skipped[b]:
                    self.dp_pruned_by_triangle += 1
                else:
                    self.dp_skipped_by_bound += 1

    def outliers(
        self,
        spec_name: str,
        cost: Optional[CostModel] = None,
        top: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Runs ranked by descending mean distance to the corpus.

        With ``top`` given, candidates whose triangle *upper* bound on
        the mean falls strictly below the ``top``-th best exact mean
        are skipped without computing their matrix row; the returned
        head of the ranking is bit-identical to the full evaluation
        (a skipped candidate's true mean is strictly below every
        returned one, so it cannot enter the head, not even on a tie).
        Upper bounds need no cost-model support — the triangle
        inequality holds for any edit-script cost — but they do need
        known distances to pivot through, so a cold corpus computes
        the full matrix exactly as before.
        """
        cost = cost or UnitCost()
        names = self.runs(spec_name)
        if top is None or top <= 0 or top >= len(names) or len(names) < 3:
            matrix = self.distance_matrix(
                spec_name, cost=cost, runs=names
            )
            return outliers(matrix, names=names, top=top)
        spec, fingerprints = self._resolve(spec_name, names)
        cost_key = cost_model_key(cost)
        with self._monitor():
            adjacency = self._known_pair_graph(
                fingerprints, cost_key, names
            )
        unknown = [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1:]
            if b not in adjacency.get(a, {})
        ]

        def pair_ceiling(a: str, b: str) -> float:
            exact = adjacency.get(a, {}).get(b)
            if exact is not None:
                return exact
            return self._triangle_ceiling(adjacency, a, b)

        ceilings: Dict[str, float] = {}
        for name in names:
            others = [o for o in names if o != name]
            ceilings[name] = sum(
                pair_ceiling(name, o) for o in others
            ) / len(others)

        means: Dict[str, float] = {}
        skipped: Dict[str, bool] = {}
        # Largest ceiling first: once the top-th exact mean
        # exceeds a ceiling, every later candidate's does too.
        for name in sorted(
            names, key=lambda n: (-ceilings[n], n)
        ):
            if len(means) >= top:
                tau = sorted(means.values(), reverse=True)[top - 1]
                if ceilings[name] < tau:
                    skipped[name] = True
                    continue
            others = [o for o in names if o != name]
            row = self._compute_pairs(
                spec,
                [(name, o) for o in others],
                fingerprints,
                cost,
            )
            means[name] = sum(
                row[(name, o)] for o in others
            ) / len(others)
        with self._monitor():
            self._count_avoided_pairs(unknown, skipped)
        ranked = sorted(
            means.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:top]

    # -- introspection ------------------------------------------------------
    @property
    def stats_counters(self) -> Dict[str, int]:
        """The integral counters alone (the ``StatsSnapshot`` payload).

        Distance-cache counters keep their historical flat names
        (``memory_hits``, ``disk_hits``, ...); the edit-script cache's
        counters ride alongside under a ``script_`` prefix, and
        ``indexed_scripts`` reports the inverted index's document count.
        """
        merged = self.cache.stats.as_dict()
        for name, value in self.script_cache.stats.as_dict().items():
            merged[f"script_{name}"] = value
        merged["computed_pairs"] = self.computed_pairs
        merged["computed_scripts"] = self.computed_scripts
        merged["indexed_scripts"] = len(self.script_index)
        merged["lock_acquisitions"] = self.lock_acquisitions
        merged["dp_skipped_by_bound"] = self.dp_skipped_by_bound
        merged["dp_pruned_by_triangle"] = self.dp_pruned_by_triangle
        merged["coalesced_requests"] = self.coalesced_requests
        return merged

    @property
    def derived_stats(self) -> Dict[str, float]:
        """Float-valued derived statistics: hit ratios and contention.

        Every ratio guards its denominator — a freshly constructed
        service (zero lookups) reports ``0.0``, never a division error.
        """

        def ratio(hits: int, lookups: int) -> float:
            return hits / lookups if lookups else 0.0

        distance = self.cache.stats
        script = self.script_cache.stats
        return {
            "memory_hit_ratio": ratio(
                distance.memory_hits, distance.lookups
            ),
            "disk_hit_ratio": ratio(
                distance.disk_hits, distance.lookups
            ),
            "script_hit_ratio": ratio(script.hits, script.lookups),
            "lock_wait_seconds": self.lock_wait_seconds,
        }

    @property
    def stats(self) -> Dict[str, float]:
        """Counters plus derived statistics, one flat mapping.

        The integral counters (see :attr:`stats_counters`) come first;
        the derived ratios/totals (:attr:`derived_stats`) ride
        alongside as floats.
        """
        merged: Dict[str, float] = dict(self.stats_counters)
        merged.update(self.derived_stats)
        return merged
