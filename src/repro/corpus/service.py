"""The corpus diff service: cached, parallel, incremental differencing.

:class:`DiffService` turns the pairwise differ into a corpus-scale
engine over a :class:`~repro.io.store.WorkflowStore`:

* every stored run is fingerprinted **once** (persisted in
  ``<root>/index/fingerprints.json``, invalidated by file stamp);
* every computed distance lands in a two-tier cache keyed by
  ``(fingerprint, fingerprint, cost model)`` — a warm
  :meth:`distance_matrix` call performs **zero** edit-distance DPs;
* cold pairs fan out over a :class:`concurrent.futures` thread pool,
  each worker running the distance-only fast path
  (:func:`repro.core.api.distance_only`) — note the DP is pure Python,
  so under the GIL threads overlap only the I/O/parsing share of a
  batch; the big speedups here come from the cache tiers, with a
  process-pool backend the natural next step for CPU parallelism;
* :meth:`add_run` is incremental: growing an ``N``-run corpus computes
  exactly the ``N`` new pairs, never the existing ``N x (N-1) / 2``;
* analytics (:meth:`medoid`, :meth:`outliers`, :meth:`nearest_runs`)
  answer the paper's "which executions cluster together / differ from
  the majority" queries on top of the cached matrix;
* :meth:`edit_script` extends the caching story from distances to the
  edit scripts themselves (directed, script-cache backed), feeding the
  inverted :class:`~repro.corpus.script_index.ScriptIndex` that the
  query engine (:mod:`repro.query`) prunes candidates with.

Runs whose fingerprints coincide are ``≡``-equivalent, so their
distance is 0 by the identity axiom — the service short-circuits such
pairs without any DP at all.
"""

from __future__ import annotations

import concurrent.futures
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import diff_runs, distance_only
from repro.corpus.analytics import k_nearest, medoid, outliers
from repro.corpus.cache import DistanceCache
from repro.corpus.fingerprint import (
    cost_model_key,
    pair_key,
    script_key,
    spec_fingerprint,
)
from repro.corpus.index import FingerprintIndex
from repro.corpus.script_cache import (
    QUERY_NAMESPACE,
    SCRIPTS_CACHE_NAME,
    ScriptCache,
    ScriptRecord,
    decode_script,
    encode_script,
)
from repro.corpus.script_index import ScriptIndex
from repro.costs.base import CostModel
from repro.costs.standard import UnitCost
from repro.errors import ReproError
from repro.io.store import WorkflowStore
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

DISTANCES_INDEX_FILE = "distances.json"


class DiffService:
    """Facade for corpus-scale differencing over one workflow store.

    Parameters
    ----------
    store:
        A :class:`WorkflowStore` or a path to create one at.  Sessions
        pass their existing store so service and session share files.
    max_workers:
        Thread-pool width for batch queries.  ``None`` lets
        :class:`~concurrent.futures.ThreadPoolExecutor` pick;  ``1``
        forces serial execution (benchmarks compare the two).  Because
        the edit-distance DP holds the GIL, expect modest gains from
        threads on CPU-bound corpora.
    cache_size:
        Bound of the in-memory distance-cache tier.
    persistent:
        When ``False``, neither distances nor fingerprints are written
        to disk — an ephemeral, memory-only service.
    """

    def __init__(
        self,
        store,
        max_workers: Optional[int] = None,
        cache_size: int = 4096,
        persistent: bool = True,
    ):
        self.store = (
            store if isinstance(store, WorkflowStore) else WorkflowStore(store)
        )
        self.max_workers = max_workers
        self.persistent = persistent
        self.index = FingerprintIndex(self.store)
        cache_path = (
            self.store.index_dir / DISTANCES_INDEX_FILE
            if persistent
            else None
        )
        self.cache = DistanceCache(path=cache_path, maxsize=cache_size)
        script_path = (
            self.store.index_path(
                SCRIPTS_CACHE_NAME, namespace=QUERY_NAMESPACE
            )
            if persistent
            else None
        )
        self.script_cache = ScriptCache(
            path=script_path, maxsize=cache_size
        )
        self.script_index = ScriptIndex(self.store, persistent=persistent)
        self.computed_pairs = 0
        self.computed_scripts = 0
        self._specs: Dict[str, WorkflowSpecification] = {}

    # -- resolution -----------------------------------------------------
    def specification(self, spec_name: str) -> WorkflowSpecification:
        if spec_name not in self._specs:
            self._specs[spec_name] = self.store.load_specification(
                spec_name
            )
        return self._specs[spec_name]

    def invalidate_specification(self, spec_name: str) -> None:
        """Forget everything memoised for a specification.

        Must be called after re-registering a specification under an
        existing name (``PDiffViewSession.register_specification`` does
        this automatically): run fingerprints embed the spec digest, so
        all of them — and the runs parsed against the old object — are
        stale.  Cached *distances* need no invalidation; they are keyed
        by content, and the new fingerprints simply miss.
        """
        self._specs.pop(spec_name, None)
        self.index.forget_spec(spec_name)

    def runs(self, spec_name: str) -> List[str]:
        return self.store.list_runs(spec_name)

    def _resolve(
        self, spec_name: str, run_names: Sequence[str]
    ) -> Tuple[WorkflowSpecification, Dict[str, str]]:
        """Fingerprint every named run (index hits skip XML parsing)."""
        spec = self.specification(spec_name)
        fingerprints = {
            name: self.index.fingerprint(spec, name) for name in run_names
        }
        return spec, fingerprints

    def fingerprints(
        self, spec_name: str, runs: Optional[Sequence[str]] = None
    ) -> Dict[str, str]:
        """``{run name: content fingerprint}`` for the named runs.

        The public face of the fingerprint index — the query engine maps
        name pairs onto content-addressed cache/index keys through this.
        ``runs=None`` covers every stored run of the specification.
        """
        names = list(runs) if runs is not None else self.runs(spec_name)
        _, fingerprints = self._resolve(spec_name, names)
        if self.persistent:
            self.index.flush()
        return fingerprints

    def _load_run(
        self, spec: WorkflowSpecification, name: str
    ) -> WorkflowRun:
        """Load a run through the index memo (parse each XML once).

        The memo is checked and published under the GIL's atomic dict
        ops via peek/remember, with parsing kept outside any lock — a
        rare race parses the same XML twice; first writer wins.
        """
        run = self.index.peek_run(spec.name, name)
        if run is None:
            run = self.index.remember(
                self.store.load_run(spec, name), as_name=name
            )
        return run

    # -- batch computation ----------------------------------------------
    def _compute_pairs(
        self,
        spec: WorkflowSpecification,
        pairs: Sequence[Tuple[str, str]],
        fingerprints: Dict[str, str],
        cost: CostModel,
    ) -> Dict[Tuple[str, str], float]:
        """Cache-aware distances for name pairs; cold pairs fan out.

        Equal-fingerprint pairs short-circuit to 0; cacheable pairs are
        deduplicated by content key so two name pairs backed by the same
        graphs cost one DP; the remaining work runs on a thread pool.
        """
        cost_key = cost_model_key(cost)
        results: Dict[Tuple[str, str], float] = {}
        pending: Dict[str, List[Tuple[str, str]]] = {}
        for a, b in pairs:
            if a == b or fingerprints[a] == fingerprints[b]:
                results[(a, b)] = 0.0
                continue
            if cost_key is None:
                # Uncacheable cost model: key by name pair, no dedup
                # across pairs, no cache traffic.
                pending.setdefault(f"{a}\x00{b}", []).append((a, b))
                continue
            key = pair_key(fingerprints[a], fingerprints[b], cost_key)
            cached = self.cache.get(key)
            if cached is not None:
                results[(a, b)] = cached
            else:
                pending.setdefault(key, []).append((a, b))

        if pending:
            ordered = list(pending.items())

            def compute(item):
                _, group = item
                a, b = group[0]
                # Canonical DP direction: δ is symmetric mathematically
                # but the DP's float accumulation is not — δ(a, b) and
                # δ(b, a) can differ in the last ULP.  The cache key is
                # undirected, so always compute lexicographically
                # (= listing order, the direction every fresh
                # ``distance_matrix`` comparison uses); otherwise a
                # value cached by ``add_run``'s (existing, new) order
                # mismatches a later warm read bit-for-bit.
                # (Name order, *not* fingerprint order, on purpose:
                # fingerprint order would disagree with listing order
                # for roughly half of all ordinary pairs and reintroduce
                # the mismatch.  The residual corner — two name pairs of
                # ≡-duplicate runs sharing one content key with opposite
                # name orders — is inherent to content-keyed dedup: even
                # a fixed direction cannot make the DPs of two distinct
                # equivalent trees bit-identical.)
                if b < a:
                    a, b = b, a
                return distance_only(
                    self._load_run(spec, a),
                    self._load_run(spec, b),
                    cost=cost,
                )

            if self.max_workers == 1 or len(ordered) == 1:
                distances = [compute(item) for item in ordered]
            else:
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=self.max_workers
                ) as pool:
                    distances = list(pool.map(compute, ordered))

            for (key, group), value in zip(ordered, distances):
                self.computed_pairs += 1
                if cost_key is not None:
                    self.cache.put(key, value)
                for a, b in group:
                    results[(a, b)] = value
            self._flush()
        elif self.persistent:
            # Even an all-warm query may have refreshed fingerprints.
            self.index.flush()
        return results

    def _flush(self) -> None:
        if self.persistent:
            self.cache.flush()
            self.script_cache.flush()
            self.script_index.flush()
            self.index.flush()

    # -- queries ---------------------------------------------------------
    def distance(
        self,
        spec_name: str,
        run_a: str,
        run_b: str,
        cost: Optional[CostModel] = None,
    ) -> float:
        """Cached ``δ(run_a, run_b)`` between two stored runs."""
        cost = cost or UnitCost()
        spec, fingerprints = self._resolve(spec_name, [run_a, run_b])
        return self._compute_pairs(
            spec, [(run_a, run_b)], fingerprints, cost
        )[(run_a, run_b)]

    def distances(
        self,
        spec_name: str,
        pairs: Sequence[Tuple[str, str]],
        cost: Optional[CostModel] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Cached distances for an explicit list of name pairs.

        The batch analogue of :meth:`distance` — the query engine's
        group-vs-group divergence uses it to price only the within- and
        cross-group pairs it needs, never the full matrix.
        """
        cost = cost or UnitCost()
        pair_list = [(a, b) for a, b in pairs]
        names = sorted({name for pair in pair_list for name in pair})
        spec, fingerprints = self._resolve(spec_name, names)
        return self._compute_pairs(spec, pair_list, fingerprints, cost)

    def distance_matrix(
        self,
        spec_name: str,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> Dict[Tuple[str, str], float]:
        """All-pairs distances, ``{(run_a, run_b): distance}``.

        Keys are unordered pairs in listing order, matching the seed
        :meth:`PDiffViewSession.distance_matrix` exactly.  ``runs``
        restricts the corpus to a subset of stored run names.
        """
        cost = cost or UnitCost()
        names = list(runs) if runs is not None else self.runs(spec_name)
        spec, fingerprints = self._resolve(spec_name, names)
        pairs = [
            (a, b)
            for i, a in enumerate(names)
            for b in names[i + 1 :]
        ]
        return self._compute_pairs(spec, pairs, fingerprints, cost)

    def nearest_runs(
        self,
        spec_name: str,
        run_name: str,
        k: Optional[int] = None,
        cost: Optional[CostModel] = None,
    ) -> List[Tuple[str, float]]:
        """One-vs-many: ``run_name``'s neighbours by ascending distance.

        Computes (or recalls) only the ``N - 1`` distances involving
        ``run_name`` — never the full matrix.
        """
        cost = cost or UnitCost()
        names = self.runs(spec_name)
        if run_name not in names:
            raise ReproError(
                f"no stored run {run_name!r} for specification "
                f"{spec_name!r}"
            )
        spec, fingerprints = self._resolve(spec_name, names)
        pairs = [(run_name, other) for other in names if other != run_name]
        distances = self._compute_pairs(spec, pairs, fingerprints, cost)
        return k_nearest(distances, run_name, k=k, names=names)

    # -- edit scripts -----------------------------------------------------
    def cached_script(self, key: str) -> Optional[ScriptRecord]:
        """The decoded script cached under a directed key, or ``None``.

        Re-reading a script also backfills the inverted index (a cache
        file can outlive a deleted index file) — any path that touches a
        script keeps the index complete.
        """
        raw = self.script_cache.get(key)
        if raw is None:
            return None
        record = decode_script(raw)
        if record is None:
            return None
        if not self.script_index.has(key):
            self.script_index.add(key, raw)
        return record

    def edit_script(
        self,
        spec_name: str,
        run_a: str,
        run_b: str,
        cost: Optional[CostModel] = None,
    ) -> ScriptRecord:
        """The cached minimum-cost edit script from ``run_a`` to ``run_b``.

        On a miss this pays one full :func:`repro.core.api.diff_runs`
        (DP + mapping backtrace + script generation), then persists the
        serialised script in the script cache, feeds the inverted index,
        and — since a script's total cost *is* the distance — seeds the
        distance cache for free.  Scripts are directed: ``(a, b)`` and
        ``(b, a)`` are distinct cache entries.
        """
        return self.edit_scripts(spec_name, [(run_a, run_b)], cost)[
            (run_a, run_b)
        ]

    def edit_scripts(
        self,
        spec_name: str,
        pairs: Sequence[Tuple[str, str]],
        cost: Optional[CostModel] = None,
    ) -> Dict[Tuple[str, str], ScriptRecord]:
        """Cached edit scripts for a batch of directed name pairs.

        The batch analogue of :meth:`edit_script` — one flush for the
        whole batch instead of one per computed script, which is what
        keeps corpus ingest linear in the number of pairs (a per-script
        flush would rewrite the growing cache file quadratically).
        Content-duplicate pairs cost one diff: the first computation's
        put makes every later lookup under the same key a cache hit.
        """
        cost = cost or UnitCost()
        pair_list = [(a, b) for a, b in pairs]
        names = sorted({name for pair in pair_list for name in pair})
        spec, fingerprints = self._resolve(spec_name, names)
        cost_key = cost_model_key(cost)
        results: Dict[Tuple[str, str], ScriptRecord] = {}
        for run_a, run_b in pair_list:
            key = None
            if cost_key is not None:
                key = script_key(
                    fingerprints[run_a], fingerprints[run_b], cost_key
                )
                record = self.cached_script(key)
                if record is not None:
                    results[(run_a, run_b)] = record
                    continue
            result = diff_runs(
                self._load_run(spec, run_a),
                self._load_run(spec, run_b),
                cost=cost,
                with_script=True,
            )
            self.computed_scripts += 1
            record = ScriptRecord(
                distance=result.distance,
                operations=list(result.script.operations),
            )
            if key is not None:
                raw = encode_script(record.distance, record.operations)
                self.script_cache.put(key, raw)
                self.script_index.add(key, raw)
                if run_a <= run_b:
                    # Seed the (undirected) distance cache only from
                    # the canonical direction — the same one
                    # ``_compute_pairs`` uses — so every cached
                    # distance is bit-identical to a fresh
                    # listing-order computation.
                    self.cache.put(
                        pair_key(
                            fingerprints[run_a],
                            fingerprints[run_b],
                            cost_key,
                        ),
                        record.distance,
                    )
            results[(run_a, run_b)] = record
        self._flush()
        return results

    # -- incremental updates ----------------------------------------------
    def add_run(
        self,
        run: WorkflowRun,
        cost: Optional[CostModel] = None,
    ) -> Dict[Tuple[str, str], float]:
        """Persist ``run`` and compute only its distances to the corpus.

        On an ``N``-run corpus this performs at most ``N`` new DPs (the
        pairs pairing the new run with each existing one); the existing
        ``N x (N-1) / 2`` matrix is untouched.  Returns the new pairs as
        ``{(existing_name, new_name): distance}``.
        """
        cost = cost or UnitCost()
        spec = run.spec
        known = self._specs.get(spec.name)
        if known is None and self.store.has_specification(spec.name):
            known = self.store.load_specification(spec.name)
        if known is not None and known is not spec:
            # Same name, different content would mix runs of two
            # specifications in one directory and mint fingerprints
            # under the wrong spec digest — refuse up front.
            if spec_fingerprint(known) != spec_fingerprint(spec):
                raise ReproError(
                    f"a different specification named {spec.name!r} "
                    "already exists in this corpus; re-register it "
                    "first if the change is intentional"
                )
        if spec.name not in self._specs:
            # Adopt the run's spec object so later loads agree with it.
            self._specs[spec.name] = spec
        if not self.store.has_specification(spec.name):
            # First run of a never-stored spec: persist the spec too,
            # or the corpus would be unreadable to other processes.
            self.store.save_specification(spec)
        existing = [
            name for name in self.runs(spec.name) if name != run.name
        ]
        self.store.save_run(run)
        self.index.record(run)
        fingerprints = {run.name: self.index.fingerprint(spec, run.name)}
        for name in existing:
            fingerprints[name] = self.index.fingerprint(spec, name)
        pairs = [(name, run.name) for name in existing]
        results = self._compute_pairs(spec, pairs, fingerprints, cost)
        self._flush()
        return results

    def add_prov_document(
        self,
        source,
        run_name: str = "",
        spec_name: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ):
        """Import a PROV-JSON/OPM document and fold it into the corpus.

        The interchange layer turns the document into a validated run
        (exactly, via an embedded plan, or through SP-ization — see
        :func:`repro.interchange.convert.import_document`);
        :meth:`add_run` then persists it and computes only the new
        distance pairs, so imported runs flow straight into the
        fingerprint index, distance cache, and script index like
        native ones.  Returns ``(import_result, new_pair_distances)``.
        """
        from repro.interchange.convert import import_document

        result = import_document(
            source, run_name=run_name, spec_name=spec_name
        )
        distances = self.add_run(result.run, cost=cost)
        return result, distances

    # -- analytics ---------------------------------------------------------
    def medoid(
        self, spec_name: str, cost: Optional[CostModel] = None
    ) -> Tuple[str, float]:
        """The corpus's most central run, ``(name, mean distance)``."""
        # One listing snapshot for both matrix and analytics, so a run
        # saved concurrently can't appear in one but not the other.
        names = self.runs(spec_name)
        matrix = self.distance_matrix(spec_name, cost=cost, runs=names)
        return medoid(matrix, names=names)

    def outliers(
        self,
        spec_name: str,
        cost: Optional[CostModel] = None,
        top: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Runs ranked by descending mean distance to the corpus."""
        names = self.runs(spec_name)
        matrix = self.distance_matrix(spec_name, cost=cost, runs=names)
        return outliers(matrix, names=names, top=top)

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> Dict[str, int]:
        """Cache statistics plus the total DP/diff counts this service paid.

        Distance-cache counters keep their historical flat names
        (``memory_hits``, ``disk_hits``, ...); the edit-script cache's
        counters ride alongside under a ``script_`` prefix, and
        ``indexed_scripts`` reports the inverted index's document count.
        """
        merged = self.cache.stats.as_dict()
        for name, value in self.script_cache.stats.as_dict().items():
            merged[f"script_{name}"] = value
        merged["computed_pairs"] = self.computed_pairs
        merged["computed_scripts"] = self.computed_scripts
        merged["indexed_scripts"] = len(self.script_index)
        return merged
