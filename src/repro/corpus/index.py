"""Persistent run-fingerprint index over a :class:`WorkflowStore`.

Fingerprinting a run requires parsing its XML and rebuilding the
annotated SP-tree — exactly the per-query cost the corpus service exists
to avoid.  :class:`FingerprintIndex` computes each run's fingerprint
once and persists it in ``<root>/index/fingerprints.json``, keyed by
specification and run name with the source file's size and mtime
recorded for invalidation: an overwritten run file is transparently
re-fingerprinted.  The stamp check shares the usual limitation of
(size, mtime)-based freshness: a rewrite that keeps the byte length
identical within one timestamp tick of a coarse-resolution filesystem
is indistinguishable from no change.  Writes that go through the
service (``DiffService.add_run``) re-fingerprint unconditionally and
are immune.

Each specification's section also records the *specification's own
digest*: run fingerprints embed it, so when a specification is
re-registered with different structure (same name, new content), the
whole section is discarded and rebuilt rather than serving fingerprints
minted under the old spec — even across processes.

The index also memoises loaded :class:`WorkflowRun` objects per spec for
the lifetime of the service instance, so a batch query parses each run
at most once.

Entry and digest tables are guarded by a re-entrant lock (the service
layer is multi-threaded); the run memo deliberately stays lock-free —
XML parsing runs outside any lock and :meth:`remember` publishes with
first-writer-wins dict semantics, so a rare duplicate parse costs time,
never correctness.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

from repro.core.bounds import (
    LeafProfile,
    decode_profile,
    encode_profile,
    leaf_profile,
)
from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.io.store import WorkflowStore
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

INDEX_NAME = "fingerprints"


def _file_stamp(path) -> Optional[Tuple[int, int]]:
    if path is None:
        return None
    try:
        stat = os.stat(path)
    except OSError:
        return None
    return (stat.st_size, stat.st_mtime_ns)


class FingerprintIndex:
    """Content-addressed run index persisted under the store's root."""

    def __init__(self, store: WorkflowStore):
        self.store = store
        #: spec name -> {"spec": spec digest, "runs": {run name: entry}}
        self._entries: Dict[str, dict] = {}
        self._spec_digests: Dict[str, str] = {}
        self._runs: Dict[Tuple[str, str], WorkflowRun] = {}
        self._dirty = False
        # Guards the entry/digest tables and the dirty flag.  The run
        # memo stays on bare dict ops (peek/remember's first-writer-wins
        # contract): parsing happens outside any lock by design.
        self._lock = threading.RLock()
        loaded = store.load_index(INDEX_NAME)
        if loaded:
            for spec_name, section in loaded.items():
                if (
                    isinstance(section, dict)
                    and isinstance(section.get("spec"), str)
                    and isinstance(section.get("runs"), dict)
                ):
                    self._entries[str(spec_name)] = {
                        "spec": section["spec"],
                        "runs": {
                            str(name): entry
                            for name, entry in section["runs"].items()
                            if isinstance(entry, dict)
                        },
                    }

    # -- persistence ----------------------------------------------------
    def flush(self) -> None:
        """Persist new/invalidated fingerprints (no-op when clean)."""
        with self._lock:
            if not self._dirty:
                return
            self.store.save_index(INDEX_NAME, self._entries)
            self._dirty = False

    # -- sections --------------------------------------------------------
    def spec_digest(self, spec: WorkflowSpecification) -> str:
        """Memoised :func:`spec_fingerprint` (keyed by spec name)."""
        key = spec.name
        with self._lock:
            if key not in self._spec_digests:
                self._spec_digests[key] = spec_fingerprint(spec)
            return self._spec_digests[key]

    def _section(self, spec: WorkflowSpecification) -> dict:
        """The spec's index section, discarded if minted under an older
        version of the specification (run fingerprints embed the spec
        digest, so they are all stale when it changes)."""
        digest = self.spec_digest(spec)
        with self._lock:
            section = self._entries.get(spec.name)
            if section is None or section.get("spec") != digest:
                if section is not None:
                    self._dirty = True
                section = {"spec": digest, "runs": {}}
                self._entries[spec.name] = section
            return section

    def forget_spec(self, spec_name: str) -> None:
        """Drop everything memoised/indexed for one specification.

        Call after re-registering a specification under an existing
        name; the next query re-fingerprints against the new content.
        """
        with self._lock:
            if self._entries.pop(spec_name, None) is not None:
                self._dirty = True
            self._spec_digests.pop(spec_name, None)
            for key in [k for k in self._runs if k[0] == spec_name]:
                del self._runs[key]

    # -- fingerprints ---------------------------------------------------
    def fingerprint(
        self, spec: WorkflowSpecification, run_name: str
    ) -> str:
        """The run's fingerprint, from the index when still valid.

        A valid entry answers without touching the run's XML beyond one
        ``stat``; otherwise the run is loaded, fingerprinted, and the
        index entry refreshed.
        """
        stamp = _file_stamp(self.store.locate_run(spec.name, run_name))
        with self._lock:
            entry = self._section(spec)["runs"].get(run_name)
            if (
                entry is not None
                and stamp is not None
                and entry.get("size") == stamp[0]
                and entry.get("mtime_ns") == stamp[1]
                and isinstance(entry.get("fingerprint"), str)
            ):
                return entry["fingerprint"]
        run = self.load_run(spec, run_name, refresh=entry is not None)
        return self.record(run, as_name=run_name)

    def record(
        self, run: WorkflowRun, as_name: Optional[str] = None
    ) -> str:
        """Fingerprint ``run`` and upsert its index entry.

        ``as_name`` indexes the entry under the name the caller used to
        reach the run — which differs from ``run.name`` when the run was
        found through the store's literal-stem fallback.  Indexing under
        the lookup name keeps the stamp pointing at the file actually
        read, so fallback-reached runs cache like any other.
        """
        name = as_name or run.name
        digest = run_fingerprint(run, self.spec_digest(run.spec))
        stamp = _file_stamp(self.store.locate_run(run.spec.name, name))
        # The leaf profile rides along for free: the run is in hand,
        # counting leaf edges is linear, and persisting it lets warm
        # bound checks skip the XML parse entirely.
        entry = {
            "fingerprint": digest,
            "profile": encode_profile(leaf_profile(run.tree)),
        }
        if stamp is not None:
            entry["size"], entry["mtime_ns"] = stamp
        with self._lock:
            self._section(run.spec)["runs"][name] = entry
            self._runs[(run.spec.name, name)] = run
            self._dirty = True
        return digest

    def profile(
        self, spec: WorkflowSpecification, run_name: str
    ) -> LeafProfile:
        """The run's leaf profile (Q-leaf label-pair counts).

        Served from the persisted index entry when present — index
        files written before profiles existed simply lack the field,
        in which case the run is loaded (through the memo) and the
        entry backfilled.  Freshness rides on :meth:`fingerprint`'s
        stamp validation: a stale entry is refreshed there first, and
        :meth:`record` always writes the profile alongside.
        """
        self.fingerprint(spec, run_name)
        with self._lock:
            entry = self._section(spec)["runs"].get(run_name)
            decoded = (
                decode_profile(entry.get("profile"))
                if entry is not None
                else None
            )
        if decoded is not None:
            return decoded
        run = self.load_run(spec, run_name)
        profile = leaf_profile(run.tree)
        with self._lock:
            entry = self._section(spec)["runs"].get(run_name)
            if entry is not None:
                entry["profile"] = encode_profile(profile)
                self._dirty = True
        return profile

    def forget(self, spec_name: str, run_name: str) -> None:
        """Drop a run's index entry and memoised object (if any)."""
        with self._lock:
            section = self._entries.get(spec_name)
            if section is not None and section["runs"].pop(
                run_name, None
            ):
                self._dirty = True
            self._runs.pop((spec_name, run_name), None)

    # -- run objects ----------------------------------------------------
    def load_run(
        self,
        spec: WorkflowSpecification,
        run_name: str,
        refresh: bool = False,
    ) -> WorkflowRun:
        """Load a run through the memo (parse each XML at most once).

        ``refresh`` forces a re-read, used when the on-disk file changed
        underneath a memoised object.
        """
        key = (spec.name, run_name)
        if refresh or key not in self._runs:
            self._runs[key] = self.store.load_run(spec, run_name)
        return self._runs[key]

    def peek_run(
        self, spec_name: str, run_name: str
    ) -> Optional[WorkflowRun]:
        """The memoised run object, or ``None`` (never touches disk)."""
        return self._runs.get((spec_name, run_name))

    def remember(
        self, run: WorkflowRun, as_name: Optional[str] = None
    ) -> WorkflowRun:
        """Memoise a loaded run, first writer wins; returns the winner.

        The concurrency seam for parallel loaders: parse outside any
        lock, then publish here.  ``as_name`` keys the memo by the
        lookup name (which differs from ``run.name`` for runs reached
        through the store's literal-stem fallback) so later peeks with
        the same lookup name hit.
        """
        key = (run.spec.name, as_name or run.name)
        return self._runs.setdefault(key, run)

    def cached_entry_count(self, spec_name: str) -> int:
        with self._lock:
            section = self._entries.get(spec_name)
            return len(section["runs"]) if section else 0
