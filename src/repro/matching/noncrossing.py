"""Minimum-cost non-crossing bipartite matching (Algorithm 6, L nodes).

Loop iterations are *ordered*: matching iteration ``i`` of one run with
iteration ``j`` of the other forbids any later iteration ``i' > i`` from
matching an earlier ``j' < j``.  The minimum-cost non-crossing matching is
exactly a sequence alignment and is solved by the classic O(n·m) edit DP:

``D[i][j] = min( D[i-1][j] + X1(c_i),          # delete iteration i
                 D[i][j-1] + X2(c_j),          # insert iteration j
                 D[i-1][j-1] + γ(M(c_i, c_j)) ) # match them``

The paper notes this replaces the Hungarian matching for L nodes and runs
in O(|E|²) (Section VI).
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple


def noncrossing_match(
    pair_cost: Callable[[int, int], float],
    delete_costs: Sequence[float],
    insert_costs: Sequence[float],
) -> Tuple[float, List[Tuple[int, int]]]:
    """Align two ordered child sequences at minimum cost.

    Parameters mirror :func:`repro.matching.hungarian.match_children`; the
    difference is that returned matches are strictly increasing in both
    coordinates (non-crossing).

    Returns
    -------
    (total, matches):
        The optimal alignment cost and the matched ``(i, j)`` pairs.
    """
    n1 = len(delete_costs)
    n2 = len(insert_costs)

    # D[i][j]: optimal cost for the first i left and j right children.
    table: List[List[float]] = [
        [0.0] * (n2 + 1) for _ in range(n1 + 1)
    ]
    for i in range(1, n1 + 1):
        table[i][0] = table[i - 1][0] + delete_costs[i - 1]
    for j in range(1, n2 + 1):
        table[0][j] = table[0][j - 1] + insert_costs[j - 1]
    for i in range(1, n1 + 1):
        for j in range(1, n2 + 1):
            best = table[i - 1][j] + delete_costs[i - 1]
            candidate = table[i][j - 1] + insert_costs[j - 1]
            if candidate < best:
                best = candidate
            candidate = table[i - 1][j - 1] + pair_cost(i - 1, j - 1)
            if candidate < best:
                best = candidate
            table[i][j] = best

    # Backtrace for the matched pairs.
    matches: List[Tuple[int, int]] = []
    i, j = n1, n2
    epsilon = 1e-12
    while i > 0 or j > 0:
        if (
            i > 0
            and abs(table[i][j] - (table[i - 1][j] + delete_costs[i - 1]))
            <= epsilon
        ):
            i -= 1
        elif (
            j > 0
            and abs(table[i][j] - (table[i][j - 1] + insert_costs[j - 1]))
            <= epsilon
        ):
            j -= 1
        else:
            matches.append((i - 1, j - 1))
            i -= 1
            j -= 1
    matches.reverse()
    return table[n1][n2], matches


def brute_force_noncrossing(
    pair_cost: Callable[[int, int], float],
    delete_costs: Sequence[float],
    insert_costs: Sequence[float],
) -> float:
    """Exponential reference implementation (testing oracle).

    Enumerates all non-crossing matchings recursively; usable for inputs of
    up to roughly 10x10.
    """
    n1 = len(delete_costs)
    n2 = len(insert_costs)

    def best(i: int, j: int) -> float:
        if i == n1:
            return sum(insert_costs[j:])
        if j == n2:
            return sum(delete_costs[i:])
        return min(
            best(i + 1, j) + delete_costs[i],
            best(i, j + 1) + insert_costs[j],
            best(i + 1, j + 1) + pair_cost(i, j),
        )

    return best(0, 0)
