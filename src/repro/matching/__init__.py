"""repro.matching subpackage."""
