"""Minimum-cost bipartite matching — the Hungarian algorithm [Kuhn 1955].

Algorithm 4 pairs the children of two F nodes by solving the assignment
problem on the bipartite graph of Fig. 9: every pair of children is
connected with the cost of their minimum-cost mapping, and each child may
instead be deleted (left side) or inserted (right side) at its subtree
cost.

This module implements the O(n³) potentials variant on square matrices
with ``math.inf`` entries, plus :func:`match_children`, which builds the
augmented square matrix of Fig. 9 and extracts the matched index pairs.
The implementation is our own (the paper cites Kuhn's Hungarian method);
the test suite cross-checks it against ``scipy.optimize``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.errors import MatchingError

INF = math.inf


def solve_assignment(cost: Sequence[Sequence[float]]) -> Tuple[float, List[int]]:
    """Solve the square assignment problem.

    Parameters
    ----------
    cost:
        An ``n x n`` matrix; ``math.inf`` marks forbidden pairs.

    Returns
    -------
    (total, assignment):
        ``assignment[row] = column`` for the minimum-cost perfect matching.

    Raises
    ------
    MatchingError
        If the matrix is not square or no finite perfect matching exists.
    """
    n = len(cost)
    for row in cost:
        if len(row) != n:
            raise MatchingError("assignment matrix must be square")
    if n == 0:
        return 0.0, []

    # Potentials method, 1-indexed internally (classic O(n^3) formulation).
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    match_col = [0] * (n + 1)  # match_col[j] = row matched to column j
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        match_col[0] = i
        j0 = 0
        minv = [INF] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = match_col[j0]
            delta = INF
            j1 = -1
            for j in range(1, n + 1):
                if used[j]:
                    continue
                entry = cost[i0 - 1][j - 1]
                cur = entry - u[i0] - v[j] if entry < INF else INF
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if delta is INF or j1 < 0:
                raise MatchingError(
                    "no finite-cost perfect matching exists"
                )
            for j in range(n + 1):
                if used[j]:
                    u[match_col[j]] += delta
                    v[j] -= delta
                elif minv[j] < INF:
                    minv[j] -= delta
            j0 = j1
            if match_col[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match_col[j0] = match_col[j1]
            j0 = j1

    assignment = [0] * n
    total = 0.0
    for j in range(1, n + 1):
        row = match_col[j] - 1
        assignment[row] = j - 1
        total += cost[row][j - 1]
    return total, assignment


def match_children(
    pair_cost: Callable[[int, int], float],
    delete_costs: Sequence[float],
    insert_costs: Sequence[float],
) -> Tuple[float, List[Tuple[int, int]]]:
    """Solve the F-node child matching of Algorithm 4 (Fig. 9).

    Parameters
    ----------
    pair_cost:
        ``pair_cost(i, j)`` — cost of mapping left child ``i`` onto right
        child ``j`` (``γ(M(c_i(v1), c_j(v2)))``).
    delete_costs:
        ``X_T1(c_i)`` — cost of deleting each left child.
    insert_costs:
        ``X_T2(c_j)`` — cost of inserting each right child.

    Returns
    -------
    (total, matches):
        ``total`` is the optimum; ``matches`` lists the ``(i, j)`` index
        pairs that are matched (unlisted children are deleted/inserted).
    """
    n1 = len(delete_costs)
    n2 = len(insert_costs)
    size = n1 + n2
    if size == 0:
        return 0.0, []

    matrix: List[List[float]] = [[INF] * size for _ in range(size)]
    for i in range(n1):
        for j in range(n2):
            matrix[i][j] = pair_cost(i, j)
        matrix[i][n2 + i] = delete_costs[i]
    for j in range(n2):
        matrix[n1 + j][j] = insert_costs[j]
        for i in range(n1):
            matrix[n1 + j][n2 + i] = 0.0

    total, assignment = solve_assignment(matrix)
    matches = [
        (i, assignment[i])
        for i in range(n1)
        if assignment[i] < n2
    ]
    return total, matches
