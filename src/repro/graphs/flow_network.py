"""Node-labelled directed multigraphs and flow networks (Definition 3.1).

A *flow network* is a directed graph with a single source ``s``, a single
sink ``t``, and the property that every node lies on some ``s``-``t`` path.
Workflow specifications and runs are both flow networks; specifications have
unique node labels while runs repeat labels (one instance per execution of a
module).

The class below is a small, deterministic multigraph tailored to the needs
of the differencing pipeline:

* edges are identified by ``(u, v, key)`` triples so that parallel
  composition may create multi-edges (Definition 3.2 allows multigraphs);
* node and edge iteration order is insertion order, which keeps canonical
  SP-tree construction reproducible;
* conversion helpers to :mod:`networkx` are provided for interoperability
  and for reusing its generic algorithms in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from repro.errors import GraphStructureError

NodeId = Hashable
EdgeId = Tuple[NodeId, NodeId, int]


class FlowNetwork:
    """A mutable node-labelled directed multigraph with flow-network checks.

    Parameters
    ----------
    name:
        Optional human-readable name (used by the PDiffView prototype and
        XML serialisation).

    Examples
    --------
    >>> g = FlowNetwork(name="toy")
    >>> for node in ("s", "a", "t"):
    ...     _ = g.add_node(node, label=node)
    >>> _ = g.add_edge("s", "a")
    >>> _ = g.add_edge("a", "t")
    >>> g.source(), g.sink()
    ('s', 't')
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._labels: Dict[NodeId, str] = {}
        self._succ: Dict[NodeId, List[EdgeId]] = {}
        self._pred: Dict[NodeId, List[EdgeId]] = {}
        self._edge_key_counter: Dict[Tuple[NodeId, NodeId], int] = {}
        self._edges: List[EdgeId] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, label: Optional[str] = None) -> NodeId:
        """Add ``node`` with ``label`` (defaults to ``str(node)``).

        Re-adding an existing node with the same label is a no-op; re-adding
        with a different label raises :class:`GraphStructureError`.
        """
        new_label = str(node) if label is None else label
        if node in self._labels:
            if self._labels[node] != new_label:
                raise GraphStructureError(
                    f"node {node!r} already has label {self._labels[node]!r}; "
                    f"cannot relabel to {new_label!r}"
                )
            return node
        self._labels[node] = new_label
        self._succ[node] = []
        self._pred[node] = []
        return node

    def add_edge(self, u: NodeId, v: NodeId, key: Optional[int] = None) -> EdgeId:
        """Add a directed edge ``u -> v`` and return its ``(u, v, key)`` id.

        Both endpoints must already exist.  ``key`` disambiguates parallel
        edges; when omitted, the next unused key for ``(u, v)`` is chosen.
        """
        for endpoint in (u, v):
            if endpoint not in self._labels:
                raise GraphStructureError(
                    f"edge endpoint {endpoint!r} has not been added as a node"
                )
        if key is None:
            key = self._edge_key_counter.get((u, v), 0)
        edge = (u, v, key)
        if edge in self._succ and edge in self._edges:  # pragma: no cover
            raise GraphStructureError(f"duplicate edge id {edge!r}")
        if edge in self._edges:
            raise GraphStructureError(f"duplicate edge id {edge!r}")
        self._edge_key_counter[(u, v)] = max(
            self._edge_key_counter.get((u, v), 0), key + 1
        )
        self._succ[u].append(edge)
        self._pred[v].append(edge)
        self._edges.append(edge)
        return edge

    def remove_edge(self, edge: EdgeId) -> None:
        """Remove an edge by its ``(u, v, key)`` id."""
        u, v, _ = edge
        try:
            self._edges.remove(edge)
        except ValueError:
            raise GraphStructureError(f"edge {edge!r} not in graph") from None
        self._succ[u].remove(edge)
        self._pred[v].remove(edge)

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node``; it must be isolated (no incident edges)."""
        if node not in self._labels:
            raise GraphStructureError(f"node {node!r} not in graph")
        if self._succ[node] or self._pred[node]:
            raise GraphStructureError(
                f"node {node!r} still has incident edges; remove them first"
            )
        del self._labels[node]
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``|V(G)|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of edges, ``|E(G)|`` (counting multi-edges)."""
        return len(self._edges)

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids in insertion order."""
        return iter(list(self._labels))

    def edges(self) -> Iterator[EdgeId]:
        """Iterate over ``(u, v, key)`` edge ids in insertion order."""
        return iter(list(self._edges))

    def label(self, node: NodeId) -> str:
        """Return the label of ``node``."""
        try:
            return self._labels[node]
        except KeyError:
            raise GraphStructureError(f"node {node!r} not in graph") from None

    def labels(self) -> Dict[NodeId, str]:
        """Return a copy of the node -> label mapping."""
        return dict(self._labels)

    def out_edges(self, node: NodeId) -> List[EdgeId]:
        """Outgoing edges of ``node`` in insertion order."""
        return list(self._succ[node])

    def in_edges(self, node: NodeId) -> List[EdgeId]:
        """Incoming edges of ``node`` in insertion order."""
        return list(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._pred[node])

    def successors(self, node: NodeId) -> List[NodeId]:
        """Distinct successor nodes (order of first appearance)."""
        seen = []
        for _, v, _ in self._succ[node]:
            if v not in seen:
                seen.append(v)
        return seen

    def predecessors(self, node: NodeId) -> List[NodeId]:
        """Distinct predecessor nodes (order of first appearance)."""
        seen = []
        for u, _, _ in self._pred[node]:
            if u not in seen:
                seen.append(u)
        return seen

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if at least one ``u -> v`` edge exists."""
        return any(edge[1] == v for edge in self._succ.get(u, []))

    # ------------------------------------------------------------------
    # Flow-network structure
    # ------------------------------------------------------------------
    def source_candidates(self) -> List[NodeId]:
        """Nodes with in-degree zero."""
        return [n for n in self._labels if not self._pred[n]]

    def sink_candidates(self) -> List[NodeId]:
        """Nodes with out-degree zero."""
        return [n for n in self._labels if not self._succ[n]]

    def source(self) -> NodeId:
        """The unique source node ``s(G)``.

        Raises :class:`GraphStructureError` if there is not exactly one node
        with in-degree zero.
        """
        candidates = self.source_candidates()
        if len(candidates) != 1:
            raise GraphStructureError(
                f"expected exactly one source, found {len(candidates)}: "
                f"{candidates!r}"
            )
        return candidates[0]

    def sink(self) -> NodeId:
        """The unique sink node ``t(G)``."""
        candidates = self.sink_candidates()
        if len(candidates) != 1:
            raise GraphStructureError(
                f"expected exactly one sink, found {len(candidates)}: "
                f"{candidates!r}"
            )
        return candidates[0]

    def is_acyclic(self) -> bool:
        """True iff the graph has no directed cycle (Kahn's algorithm)."""
        indegree = {n: len(self._pred[n]) for n in self._labels}
        stack = [n for n, d in indegree.items() if d == 0]
        visited = 0
        while stack:
            node = stack.pop()
            visited += 1
            for _, v, _ in self._succ[node]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    stack.append(v)
        return visited == len(self._labels)

    def topological_order(self) -> List[NodeId]:
        """A topological order of the nodes (deterministic for fixed input).

        Raises :class:`GraphStructureError` when the graph has a cycle.
        """
        indegree = {n: len(self._pred[n]) for n in self._labels}
        queue = [n for n in self._labels if indegree[n] == 0]
        order: List[NodeId] = []
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            order.append(node)
            for _, v, _ in self._succ[node]:
                indegree[v] -= 1
                if indegree[v] == 0:
                    queue.append(v)
        if len(order) != len(self._labels):
            raise GraphStructureError("graph has a directed cycle")
        return order

    def validate_flow_network(self) -> None:
        """Check Definition 3.1: single source/sink, all nodes on s-t paths.

        Raises :class:`GraphStructureError` on the first violation found.
        """
        if not self._labels:
            raise GraphStructureError("empty graph is not a flow network")
        source = self.source()
        sink = self.sink()
        if source == sink and self._edges:
            raise GraphStructureError("source and sink coincide")
        reachable = self._reachable_from(source)
        coreachable = self._coreachable_from(sink)
        for node in self._labels:
            if node not in reachable or node not in coreachable:
                raise GraphStructureError(
                    f"node {node!r} does not lie on any path from "
                    f"{source!r} to {sink!r}"
                )

    def is_flow_network(self) -> bool:
        """Boolean form of :meth:`validate_flow_network`."""
        try:
            self.validate_flow_network()
        except GraphStructureError:
            return False
        return True

    def _reachable_from(self, start: NodeId) -> set:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for _, v, _ in self._succ[node]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def _coreachable_from(self, start: NodeId) -> set:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for u, _, _ in self._pred[node]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        return seen

    # ------------------------------------------------------------------
    # Copies and conversions
    # ------------------------------------------------------------------
    def copy(self) -> "FlowNetwork":
        """Deep structural copy (labels and edge keys preserved)."""
        clone = FlowNetwork(name=self.name)
        for node, label in self._labels.items():
            clone.add_node(node, label)
        for u, v, key in self._edges:
            clone.add_edge(u, v, key)
        return clone

    def to_networkx(self) -> "nx.MultiDiGraph":
        """Convert to a :class:`networkx.MultiDiGraph` with ``label`` attrs."""
        graph = nx.MultiDiGraph(name=self.name)
        for node, label in self._labels.items():
            graph.add_node(node, label=label)
        for u, v, key in self._edges:
            graph.add_edge(u, v, key=key)
        return graph

    @classmethod
    def from_networkx(cls, graph: "nx.DiGraph") -> "FlowNetwork":
        """Build from a (multi-)digraph; missing labels default to node ids."""
        network = cls(name=graph.name if isinstance(graph.name, str) else "")
        for node, data in graph.nodes(data=True):
            network.add_node(node, data.get("label", str(node)))
        if graph.is_multigraph():
            for u, v, key in graph.edges(keys=True):
                network.add_edge(u, v, key if isinstance(key, int) else None)
        else:
            for u, v in graph.edges():
                network.add_edge(u, v)
        return network

    @classmethod
    def from_edge_list(
        cls,
        edges: Iterable[Tuple[NodeId, NodeId]],
        labels: Optional[Dict[NodeId, str]] = None,
        name: str = "",
    ) -> "FlowNetwork":
        """Build from ``(u, v)`` pairs, adding endpoints as needed.

        ``labels`` overrides the default ``str(node)`` labelling.
        """
        labels = labels or {}
        network = cls(name=name)
        for u, v in edges:
            for node in (u, v):
                if node not in network:
                    network.add_node(node, labels.get(node))
            network.add_edge(u, v)
        return network

    # ------------------------------------------------------------------
    # Comparisons and display
    # ------------------------------------------------------------------
    def edge_multiset(self) -> Dict[Tuple[NodeId, NodeId], int]:
        """Multiset of ``(u, v)`` pairs (multiplicity per pair)."""
        counts: Dict[Tuple[NodeId, NodeId], int] = {}
        for u, v, _ in self._edges:
            counts[(u, v)] = counts.get((u, v), 0) + 1
        return counts

    def structurally_equal(self, other: "FlowNetwork") -> bool:
        """Same labelled nodes and the same ``(u, v)`` edge multiset.

        Edge keys are ignored: two graphs that differ only in the keys
        assigned to parallel edges are considered equal.
        """
        if self._labels != other._labels:
            return False
        return self.edge_multiset() == other.edge_multiset()

    def __repr__(self) -> str:
        return (
            f"FlowNetwork(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
