"""Series-parallel graph construction (Definition 3.2).

An SP-graph is built from basic single-edge graphs by *series composition*
(identify the sink of the first with the source of the second) and *parallel
composition* (identify sources and sinks pairwise).  These functions operate
on :class:`~repro.graphs.flow_network.FlowNetwork` instances and mirror the
paper's ``S`` and ``P`` operators on graphs.

The composition functions require the operand node sets to be disjoint apart
from the identified terminals, which keeps node identity explicit — exactly
what the differencing pipeline needs, because a run's node instances carry
meaning (``3a`` vs ``3b`` in Fig. 2).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GraphStructureError
from repro.graphs.flow_network import FlowNetwork, NodeId


def basic_sp(
    source: NodeId,
    sink: NodeId,
    source_label: str = None,
    sink_label: str = None,
    name: str = "",
) -> FlowNetwork:
    """Create the basic SP-graph: a single edge ``source -> sink``."""
    if source == sink:
        raise GraphStructureError("basic SP-graph needs two distinct terminals")
    graph = FlowNetwork(name=name)
    graph.add_node(source, source_label)
    graph.add_node(sink, sink_label)
    graph.add_edge(source, sink)
    return graph


def _merge_into(target: FlowNetwork, part: FlowNetwork, rename: dict) -> None:
    """Copy ``part`` into ``target`` applying the node ``rename`` map."""
    for node in part.nodes():
        mapped = rename.get(node, node)
        if mapped in target:
            if target.label(mapped) != part.label(node):
                raise GraphStructureError(
                    f"label clash while composing: node {mapped!r} has labels "
                    f"{target.label(mapped)!r} and {part.label(node)!r}"
                )
        else:
            target.add_node(mapped, part.label(node))
    for u, v, _ in part.edges():
        target.add_edge(rename.get(u, u), rename.get(v, v))


def _check_disjoint(
    first: FlowNetwork, second: FlowNetwork, shared: Iterable[NodeId]
) -> None:
    shared = set(shared)
    overlap = (set(first.nodes()) & set(second.nodes())) - shared
    if overlap:
        raise GraphStructureError(
            f"operand node sets overlap beyond the identified terminals: "
            f"{sorted(map(repr, overlap))}"
        )


def series_compose(first: FlowNetwork, second: FlowNetwork) -> FlowNetwork:
    """Series composition ``S(G1, G2)``: identify ``t(G1)`` with ``s(G2)``.

    The two graphs must already agree on the identified node: ``t(G1)`` and
    ``s(G2)`` must be the same node id with the same label.  (Use
    :func:`series_chain` with auto-generated ids when building synthetic
    specifications.)
    """
    joint = first.sink()
    if second.source() != joint:
        raise GraphStructureError(
            f"series composition requires t(G1) == s(G2); got "
            f"{joint!r} and {second.source()!r}"
        )
    _check_disjoint(first, second, {joint})
    result = first.copy()
    result.name = ""
    _merge_into(result, second, rename={})
    return result


def parallel_compose(first: FlowNetwork, second: FlowNetwork) -> FlowNetwork:
    """Parallel composition ``P(G1, G2)``: identify sources and sinks."""
    if first.source() != second.source() or first.sink() != second.sink():
        raise GraphStructureError(
            "parallel composition requires matching terminals: got "
            f"({first.source()!r}, {first.sink()!r}) and "
            f"({second.source()!r}, {second.sink()!r})"
        )
    _check_disjoint(first, second, {first.source(), first.sink()})
    result = first.copy()
    result.name = ""
    _merge_into(result, second, rename={})
    return result


def series_chain(graphs: Sequence[FlowNetwork]) -> FlowNetwork:
    """Left fold of :func:`series_compose` over ``graphs``."""
    if not graphs:
        raise GraphStructureError("series_chain requires at least one graph")
    result = graphs[0]
    for part in graphs[1:]:
        result = series_compose(result, part)
    return result


def parallel_bundle(graphs: Sequence[FlowNetwork]) -> FlowNetwork:
    """Left fold of :func:`parallel_compose` over ``graphs``."""
    if not graphs:
        raise GraphStructureError("parallel_bundle requires at least one graph")
    result = graphs[0]
    for part in graphs[1:]:
        result = parallel_compose(result, part)
    return result


def path_graph(nodes: Sequence[NodeId], labels: dict = None) -> FlowNetwork:
    """A simple directed path through ``nodes`` (a series-only SP-graph)."""
    if len(nodes) < 2:
        raise GraphStructureError("a path needs at least two nodes")
    labels = labels or {}
    graph = FlowNetwork()
    for node in nodes:
        graph.add_node(node, labels.get(node))
    for u, v in zip(nodes, nodes[1:]):
        graph.add_edge(u, v)
    return graph


def diamond_graph() -> FlowNetwork:
    """The four-node forbidden minor of SP-DAGs (used by Theorem 1).

    Nodes ``s, v1, v2, t`` with edges ``s->v1, s->v2, v1->v2, v1->t, v2->t``.
    This is the smallest flow network that is *not* series-parallel.
    """
    graph = FlowNetwork(name="forbidden-minor")
    for node in ("s", "v1", "v2", "t"):
        graph.add_node(node)
    graph.add_edge("s", "v1")
    graph.add_edge("s", "v2")
    graph.add_edge("v1", "v2")
    graph.add_edge("v1", "t")
    graph.add_edge("v2", "t")
    return graph
