"""repro.graphs subpackage."""
