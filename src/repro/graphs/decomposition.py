"""Series-parallel recognition helpers (graph-side facade).

The actual reduction engine lives in :mod:`repro.sptree.canonical`; this
module exposes graph-centric conveniences: recognition predicates, the
irreducible residual of a non-SP graph, and round-trip materialisation.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import NotSeriesParallelError
from repro.graphs.flow_network import FlowNetwork, NodeId
from repro.sptree.canonical import canonical_sp_tree, is_series_parallel
from repro.sptree.nodes import SPTree

__all__ = [
    "canonical_sp_tree",
    "is_series_parallel",
    "sp_residual",
    "roundtrip_graph",
]


def sp_residual(graph: FlowNetwork) -> List[Tuple[NodeId, NodeId]]:
    """Irreducible edges left after exhaustive series/parallel reduction.

    Returns an empty list when ``graph`` is series-parallel.  A non-empty
    residual always embeds the four-node forbidden minor (``s``, ``v1``,
    ``v2``, ``t`` with the five edges of Theorem 1's specification).
    """
    try:
        canonical_sp_tree(graph)
    except NotSeriesParallelError as exc:
        return list(exc.residual_edges)
    return []


def roundtrip_graph(graph: FlowNetwork) -> FlowNetwork:
    """Decompose ``graph`` to its canonical SP-tree and materialise it back.

    The result is structurally equal to the input (used as a sanity check
    throughout the test suite).
    """
    tree: SPTree = canonical_sp_tree(graph)
    return tree.to_graph(name=graph.name)
