"""Run validity under the general workflow model (Section III-B).

A node-labelled flow network ``R`` is a valid run of a specification graph
``G`` (unique labels) iff ``R`` is acyclic and there is a homomorphism
``h : V(R) -> V(G)`` such that

1. ``Label(v) = Label(h(v))`` for every node,
2. ``h(s(R)) = s(G)`` and ``h(t(R)) = t(G)``,
3. every edge of ``R`` maps to an edge of ``G``.

Because specification labels are unique, the homomorphism — when it exists —
is *forced*: ``h(v)`` is the unique specification node carrying ``v``'s
label.  Loop executions introduce implicit back-edges ``(t(H), s(H))`` that
are not specification edges; the checker accepts an explicit set of allowed
back-edge label pairs for this purpose (Section VI).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import GraphStructureError, InvalidRunError, SpecificationError
from repro.graphs.flow_network import FlowNetwork, NodeId

LabelPair = Tuple[str, str]


def label_index(spec_graph: FlowNetwork) -> Dict[str, NodeId]:
    """Map each (unique) specification label to its node id.

    Raises :class:`SpecificationError` on duplicate labels.
    """
    index: Dict[str, NodeId] = {}
    for node in spec_graph.nodes():
        label = spec_graph.label(node)
        if label in index:
            raise SpecificationError(
                f"specification labels must be unique; {label!r} appears on "
                f"nodes {index[label]!r} and {node!r}"
            )
        index[label] = node
    return index


def induced_homomorphism(
    run: FlowNetwork, spec_graph: FlowNetwork
) -> Dict[NodeId, NodeId]:
    """The label-forced candidate homomorphism ``h`` from run to spec nodes.

    Raises :class:`InvalidRunError` if some run node's label does not occur
    in the specification.  Edge conditions are *not* checked here; see
    :func:`check_valid_run`.
    """
    index = label_index(spec_graph)
    mapping: Dict[NodeId, NodeId] = {}
    for node in run.nodes():
        label = run.label(node)
        if label not in index:
            raise InvalidRunError(
                f"run node {node!r} has label {label!r} which is not a "
                "specification label"
            )
        mapping[node] = index[label]
    return mapping


def check_valid_run(
    run: FlowNetwork,
    spec_graph: FlowNetwork,
    allowed_back_edges: Optional[Set[LabelPair]] = None,
) -> Dict[NodeId, NodeId]:
    """Validate ``run`` under the general model and return ``h``.

    Parameters
    ----------
    allowed_back_edges:
        Label pairs ``(t(H), s(H))`` of loops whose implicit unrolling edges
        are accepted in addition to the specification edges.

    Raises
    ------
    InvalidRunError
        On any violated condition, with a message naming the culprit.
    """
    allowed_back_edges = allowed_back_edges or set()
    try:
        run.validate_flow_network()
    except GraphStructureError as exc:
        raise InvalidRunError(f"run is not a flow network: {exc}") from exc
    if not run.is_acyclic():
        raise InvalidRunError("run must be acyclic")

    mapping = induced_homomorphism(run, spec_graph)

    spec_source = spec_graph.source()
    spec_sink = spec_graph.sink()
    if mapping[run.source()] != spec_source:
        raise InvalidRunError(
            f"run source maps to {mapping[run.source()]!r}, expected the "
            f"specification source {spec_source!r}"
        )
    if mapping[run.sink()] != spec_sink:
        raise InvalidRunError(
            f"run sink maps to {mapping[run.sink()]!r}, expected the "
            f"specification sink {spec_sink!r}"
        )

    spec_pairs: FrozenSet[Tuple[NodeId, NodeId]] = frozenset(
        (u, v) for u, v, _ in spec_graph.edges()
    )
    for u, v, _ in run.edges():
        image = (mapping[u], mapping[v])
        label_pair = (run.label(u), run.label(v))
        if image not in spec_pairs and label_pair not in allowed_back_edges:
            raise InvalidRunError(
                f"run edge {u!r} -> {v!r} maps to {image!r}, which is "
                "neither a specification edge nor an allowed loop back-edge"
            )
    return mapping


def is_valid_run(
    run: FlowNetwork,
    spec_graph: FlowNetwork,
    allowed_back_edges: Optional[Set[LabelPair]] = None,
) -> bool:
    """Boolean form of :func:`check_valid_run`."""
    try:
        check_valid_run(run, spec_graph, allowed_back_edges)
    except InvalidRunError:
        return False
    return True
