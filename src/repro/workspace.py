"""The unified client API: one :class:`Workspace` over every subsystem.

Historically the library grew four parallel entry points — the
functional core (``diff_runs``), the corpus service (``DiffService``),
the prototype session (``PDiffViewSession``) and the query engine
(``QueryEngine``) — each wiring its own store, cost model and caches.
A :class:`Workspace` is the single coherent surface over all of them:
constructed from a path plus a :class:`~repro.config.ReproConfig`, it
owns the :class:`~repro.io.store.WorkflowStore`, the corpus
:class:`~repro.corpus.service.DiffService` (on the configured
execution backend), the :class:`~repro.query.engine.QueryEngine`, the
interchange layer and the PDiffView rendering layer, and exposes one
documented API:

>>> from repro import ReproConfig, Workspace          # doctest: +SKIP
>>> ws = Workspace(path, ReproConfig(backend="process"))
>>> ws.register(protein_annotation())
>>> ws.generate_run("monday", seed=1)
>>> ws.generate_run("tuesday", seed=2)
>>> ws.diff("monday", "tuesday").distance
4.0
>>> ws.matrix()                       # all pairs, cached, parallel
>>> ws.query(Q.op_kind("path-deletion"))
>>> ws.view("monday", "tuesday").overview()

Every result that prices or lists edits is a typed
:class:`DiffOutcome`; streaming batch work (:meth:`Workspace.diff_many`)
yields outcomes as their backend chunks complete.  The full public
surface is pinned down by the :class:`repro.api_types.WorkspaceAPI`
protocol, which :class:`repro.client.RemoteWorkspace` also satisfies —
the same code runs against a local store or a ``repro serve`` endpoint.
The legacy entry points remain importable as deprecated shims — see
``docs/MIGRATION.md`` for the call-site mapping.
"""

from __future__ import annotations

import threading
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api_types import (
    DiffOutcome,
    MatrixResult,
    QueryFilter,
    QueryPage,
    StatsSnapshot,
    decode_cursor,
    encode_cursor,
)
from repro.cluster.shard import shard_for_pair
from repro.config import ReproConfig
from repro.core.api import diff_runs
from repro.corpus.fingerprint import cost_model_key
from repro.corpus.service import DiffService
from repro.costs.base import CostModel
from repro.errors import NotFoundError, ReproError
from repro.io.store import WorkflowStore
from repro.obs.metrics import MetricsRegistry
from repro.pdiffview.session import DiffView
from repro.query.engine import QueryEngine, ScriptDoc
from repro.query.predicates import Predicate
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__all__ = ["DiffOutcome", "RunRef", "Workspace"]

#: A run argument: the name of a stored run, or an in-memory run object.
RunRef = Union[str, WorkflowRun]


class Workspace:
    """A store-backed provenance workspace: the library's client API.

    Parameters
    ----------
    root:
        Directory of the workflow store (created on demand), or an
        existing :class:`~repro.io.store.WorkflowStore` to share.
    config:
        A :class:`~repro.config.ReproConfig`; defaults to
        ``ReproConfig()`` (unit cost, thread backend, persistent
        caches).

    Attributes
    ----------
    store / service / engine / backend:
        The owned subsystem objects, exposed for advanced use (e.g.
        streaming query evaluation via ``ws.engine.select``); everyday
        work goes through the workspace methods.
    """

    def __init__(self, root, config: Optional[ReproConfig] = None):
        self.config = config or ReproConfig()
        self.store = (
            root if isinstance(root, WorkflowStore) else WorkflowStore(root)
        )
        self.backend = self.config.make_backend()
        # One registry per workspace (not per process): parallel
        # workspaces in one test process never pollute each other's
        # counts, and a disabled registry makes every update a no-op.
        self.metrics = MetricsRegistry(enabled=self.config.metrics)
        self.service = DiffService(
            self.store,
            cache_size=self.config.cache_size,
            persistent=self.config.persistent,
            backend=self.backend,
            metrics=self.metrics,
            kernel=self.config.kernel,
        )
        self.engine = QueryEngine(self.service)
        self._specs: Dict[str, WorkflowSpecification] = {}
        # Guards the session spec memo; the heavyweight state below it
        # (service, caches, indexes) carries its own lock discipline.
        self._spec_lock = threading.RLock()
        self._stream_hub = None
        self._stream_hub_lock = threading.Lock()

    @property
    def stream_hub(self):
        """The workspace's streaming-ingestion hub (built on demand).

        One hub per workspace: the in-process :meth:`stream` transport
        and the HTTP ``/stream/*`` routes share it, so both faces see
        the same session namespace and the same ``stream_*`` counters.
        """
        with self._stream_hub_lock:
            if self._stream_hub is None:
                from repro.stream.hub import StreamHub

                self._stream_hub = StreamHub(self)
            return self._stream_hub

    # -- specification management ---------------------------------------
    def register(self, spec: WorkflowSpecification) -> None:
        """Persist a specification and adopt it for later calls.

        Re-registering an existing name invalidates every fingerprint
        minted under the old content (the corpus service's rule).
        """
        with self._spec_lock:
            self._specs[spec.name] = spec
            self.store.save_specification(spec)
            self.service.invalidate_specification(spec.name)

    def specification(self, name: str) -> WorkflowSpecification:
        """The named specification (session-memoised)."""
        with self._spec_lock:
            if name not in self._specs:
                self._specs[name] = self.service.specification(name)
            return self._specs[name]

    def specifications(self) -> List[str]:
        """Names of every specification this workspace knows."""
        return sorted(
            set(self._specs) | set(self.store.list_specifications())
        )

    def _spec_name(self, spec: Optional[str]) -> str:
        """Resolve the default specification for spec-less calls.

        A workspace holding exactly one specification lets every call
        omit ``spec=``; with zero or several, the ambiguity is refused
        with the available names spelled out.
        """
        if spec is not None:
            return spec
        names = self.specifications()
        if len(names) == 1:
            return names[0]
        if not names:
            raise ReproError(
                "workspace holds no specifications; register one first"
            )
        raise ReproError(
            "workspace holds several specifications "
            f"({', '.join(names)}); pass spec= to disambiguate"
        )

    # -- run management ---------------------------------------------------
    def add_run(
        self, run: WorkflowRun, cost: Optional[CostModel] = None
    ) -> Dict[Tuple[str, str], float]:
        """Persist ``run`` and price only its pairs against the corpus.

        Incremental: an ``N``-run corpus pays at most ``N`` new DPs.
        Returns ``{(existing_name, new_name): distance}``.
        """
        return self.service.add_run(run, cost=cost or self.config.cost)

    def import_run(self, run: WorkflowRun) -> None:
        """Persist a run without pricing it against the corpus."""
        self.store.save_run(run)

    def generate_run(
        self,
        name: str,
        spec: Optional[str] = None,
        params: Optional[ExecutionParams] = None,
        seed: Optional[int] = None,
    ) -> WorkflowRun:
        """Generate, persist and return a random run of a specification."""
        specification = self.specification(self._spec_name(spec))
        run = execute_workflow(specification, params, seed=seed, name=name)
        self.store.save_run(run)
        return run

    def run(self, name: str, spec: Optional[str] = None) -> WorkflowRun:
        """Load a stored run (through the corpus parse memo: a run is
        parsed once per workspace, however many calls touch it)."""
        return self.service.load_run(self._spec_name(spec), name)

    def runs(self, spec: Optional[str] = None) -> List[str]:
        """Names of the stored runs of a specification.

        An explicitly named but unknown specification raises
        :class:`~repro.errors.NotFoundError` (the remote workspace
        behaves identically) — an empty listing is reserved for
        specifications that exist and simply have no runs yet.
        """
        spec_name = self._spec_name(spec)
        with self._spec_lock:
            known = (
                spec_name in self._specs
                or self.store.has_specification(spec_name)
            )
        if not known:
            raise NotFoundError(
                f"no stored specification named {spec_name!r}"
            )
        return self.store.list_runs(spec_name)

    # -- differencing -----------------------------------------------------
    def _resolve_pair(
        self, a: RunRef, b: RunRef, spec: Optional[str]
    ) -> Tuple[Optional[str], RunRef, RunRef]:
        """Validate a diff argument pair; returns ``(spec_name, a, b)``.

        Name pairs resolve against the (default) specification; run
        objects are used as-is.  Mixing a name with a run object is
        refused — the name's store identity and the object's in-memory
        identity could silently disagree.
        """
        a_is_run = isinstance(a, WorkflowRun)
        b_is_run = isinstance(b, WorkflowRun)
        if a_is_run != b_is_run:
            raise ReproError(
                "diff arguments must be two run names or two "
                "WorkflowRun objects, not a mix"
            )
        if a_is_run:
            return None, a, b
        return self._spec_name(spec), a, b

    @staticmethod
    def _outcome(
        spec_name: str,
        run_a: str,
        run_b: str,
        cost: CostModel,
        distance: float,
        operations,
    ) -> DiffOutcome:
        """The one place a :class:`DiffOutcome` is assembled."""
        return DiffOutcome(
            spec_name=spec_name,
            run_a=run_a,
            run_b=run_b,
            cost_model=cost.name,
            distance=distance,
            operations=list(operations),
            cost_key=cost_model_key(cost),
        )

    def diff(
        self,
        a: RunRef,
        b: RunRef,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> DiffOutcome:
        """The minimum-cost edit script from ``a`` to ``b``, priced.

        ``a``/``b`` are stored run names (answered through the corpus
        caches) or two in-memory :class:`WorkflowRun` objects (diffed
        directly, nothing persisted).
        """
        cost = cost or self.config.cost
        spec_name, a, b = self._resolve_pair(a, b, spec)
        if spec_name is None:
            result = diff_runs(a, b, cost=cost, with_script=True)
            return self._outcome(
                a.spec.name, a.name, b.name, cost,
                result.distance, result.script.operations,
            )
        record = self.service.edit_script(spec_name, a, b, cost=cost)
        return self._outcome(
            spec_name, a, b, cost, record.distance, record.operations
        )

    def diff_many(
        self,
        pairs: Iterable[Tuple[str, str]],
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> Iterator[DiffOutcome]:
        """Stream :class:`DiffOutcome` results for directed name pairs.

        Pairs are dispatched to the execution backend in chunks sized
        to its parallelism, and outcomes are yielded in input order as
        each chunk completes — a million-pair sweep starts producing
        results after the first chunk, not after the last.  Persistence
        settles once: chunks are computed with ``flush=False`` and the
        cache tiers flush when the sweep finishes (or the consumer
        abandons the iterator), so a long sweep never rewrites the
        growing script-cache file per chunk.
        """
        cost = cost or self.config.cost
        spec_name = self._spec_name(spec)
        # Process pools are built per dispatched batch, so chunks on a
        # pickling backend are sized much larger — amortising pool
        # startup over ~64 pairs per worker instead of paying a full
        # fork/teardown cycle every 4.
        per_job = 64 if self.backend.requires_pickling else 4
        chunk_size = max(1, per_job * self.backend.effective_jobs)
        batch: List[Tuple[str, str]] = []

        def drain(batch: List[Tuple[str, str]]):
            records = self.service.edit_scripts(
                spec_name, batch, cost, flush=False
            )
            for a, b in batch:
                record = records[(a, b)]
                yield self._outcome(
                    spec_name, a, b, cost,
                    record.distance, record.operations,
                )

        try:
            for pair in pairs:
                batch.append(tuple(pair))
                if len(batch) >= chunk_size:
                    yield from drain(batch)
                    batch = []
            if batch:
                yield from drain(batch)
        finally:
            # Runs on completion and on early abandonment alike —
            # whatever was computed is persisted exactly once.
            self.service.flush()

    def matrix(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> MatrixResult:
        """All-pairs distances as a typed :class:`MatrixResult`.

        The result still reads as the historical
        ``{(run_a, run_b): distance}`` mapping (unordered pairs in
        listing order) while carrying the spec name, cost identity and
        run listing for transport.  Cold pairs fan out on the
        configured backend, warm pairs answer from the cache tiers.

        ``shard=(index, count)`` restricts the computation to the pairs
        a cluster worker owns (by :func:`shard_for_pair`); the returned
        matrix carries the *full* run listing but only that shard's
        distances, so the routing parent can union shard results into
        the complete, bit-identical matrix.
        """
        cost = cost or self.config.cost
        spec_name = self._spec_name(spec)
        names = list(runs) if runs is not None else self.runs(spec_name)
        if shard is not None:
            index, count = shard
            pairs = [
                (a, b)
                for i, a in enumerate(names)
                for b in names[i + 1 :]
                if shard_for_pair(a, b, count) == index
            ]
            distances = self.service.distances(
                spec_name, pairs, cost=cost
            )
        else:
            distances = self.service.distance_matrix(
                spec_name, cost=cost, runs=names
            )
        return MatrixResult(
            spec_name=spec_name,
            cost_model=cost.name,
            cost_key=cost_model_key(cost),
            runs=names,
            distances=distances,
        )

    def nearest(
        self,
        run_name: str,
        k: Optional[int] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> List[Tuple[str, float]]:
        """``run_name``'s neighbours by ascending distance (one-vs-many)."""
        return self.service.nearest_runs(
            self._spec_name(spec),
            run_name,
            k=k,
            cost=cost or self.config.cost,
        )

    def medoid(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> Tuple[str, float]:
        """The corpus's most central run, ``(name, mean distance)``."""
        return self.service.medoid(
            self._spec_name(spec), cost=cost or self.config.cost
        )

    def outliers(
        self,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        top: Optional[int] = None,
    ) -> List[Tuple[str, float]]:
        """Runs ranked by descending mean distance to the corpus."""
        return self.service.outliers(
            self._spec_name(spec), cost=cost or self.config.cost, top=top
        )

    # -- querying ----------------------------------------------------------
    def _runs_matching_metadata(
        self,
        spec_name: str,
        filter: QueryFilter,
        runs: Optional[Sequence[str]],
    ) -> Optional[Sequence[str]]:
        """Restrict a run listing by the filter's user/host clauses.

        A pair matches a ``users``/``hosts`` clause only when *both*
        runs' operational metadata does, so the restriction applies to
        the run set before pairing.  Runs without metadata (written by
        older versions) never match a non-empty clause — slicing is
        opt-in and conservative.
        """
        if not filter.users and not filter.hosts:
            return runs
        names = list(runs) if runs is not None else self.runs(spec_name)
        matched = []
        for name in names:
            meta = self.store.run_metadata(spec_name, name)
            if meta is None:
                continue
            if filter.users and meta.user not in filter.users:
                continue
            if filter.hosts and meta.host not in filter.hosts:
                continue
            matched.append(name)
        return matched

    def query(
        self,
        predicate: Optional[Union[Predicate, QueryFilter]] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        runs: Optional[Sequence[str]] = None,
    ) -> List[ScriptDoc]:
        """The diffs of stored run pairs matching a ``Q`` predicate.

        Materialised in listing order; accepts either a live ``Q``
        predicate or the declarative (wire-safe)
        :class:`~repro.api_types.QueryFilter`.  Use ``ws.engine.select``
        for streaming evaluation and ``ws.engine``'s aggregation methods
        (``histogram``/``churn``/``divergence``) beyond these::

            from repro import Q
            ws.query(Q.op_kind("path-deletion") & Q.touches("getGOAnnot"))
        """
        if isinstance(predicate, QueryFilter):
            runs = self._runs_matching_metadata(
                self._spec_name(spec), predicate, runs
            )
            predicate = predicate.to_predicate()
        return list(
            self.engine.select(
                self._spec_name(spec),
                predicate,
                cost=cost or self.config.cost,
                runs=runs,
            )
        )

    def query_page(
        self,
        filter: Optional[QueryFilter] = None,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        cursor: Optional[str] = None,
        limit: Optional[int] = None,
        runs: Optional[Sequence[str]] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> QueryPage:
        """One page of the diffs matching a :class:`QueryFilter`.

        The paginated face of :meth:`query` — results are enumerated in
        the corpus's deterministic listing order, so an opaque cursor
        (``page.next_cursor``) resumes exactly where the previous page
        stopped.  ``limit=None`` returns everything in one page.

        ``shard=(index, count)`` evaluates only the pairs that shard
        owns (cluster scatter); the parent re-sorts merged shard items
        into global listing order and re-applies cursor/limit, so the
        paged result is bit-identical to a single process's.
        """
        filter = filter if filter is not None else QueryFilter()
        cost = cost or self.config.cost
        spec_name = self._spec_name(spec)
        runs = self._runs_matching_metadata(spec_name, filter, runs)
        pair_filter = None
        if shard is not None:
            index, count = shard
            pair_filter = (
                lambda a, b: shard_for_pair(a, b, count) == index
            )
        docs = list(
            self.engine.select(
                spec_name,
                filter.to_predicate(),
                cost=cost,
                runs=runs,
                pair_filter=pair_filter,
            )
        )
        offset = decode_cursor(cursor)
        if limit is not None and limit < 0:
            raise ReproError(f"limit must be >= 0, got {limit}")
        end = len(docs) if limit is None else min(offset + limit, len(docs))
        items = [
            self._outcome(
                spec_name, doc.run_a, doc.run_b, cost,
                doc.distance, doc.operations,
            )
            for doc in docs[offset:end]
        ]
        return QueryPage(
            spec_name=spec_name,
            cost_model=cost.name,
            cost_key=cost_model_key(cost),
            filter=filter,
            total_matches=len(docs),
            items=items,
            cursor=cursor,
            next_cursor=(
                encode_cursor(end) if end < len(docs) else None
            ),
        )

    # -- interchange -------------------------------------------------------
    def import_prov(
        self,
        source,
        name: str = "",
        spec_name: Optional[str] = None,
        diff: bool = False,
        cost: Optional[CostModel] = None,
    ):
        """Import a PROV-JSON/OPM document into the workspace's store.

        Registers the embedded or derived specification, persists the
        run, and — with ``diff=True`` — also prices the newcomer
        against the existing corpus.  Returns the
        :class:`~repro.interchange.convert.ImportResult`, or
        ``(ImportResult, {(existing, new): distance})`` when
        ``diff=True``.
        """
        if diff:
            result, distances = self.service.add_prov_document(
                source,
                run_name=name,
                spec_name=spec_name,
                cost=cost or self.config.cost,
            )
            self._specs.setdefault(result.spec.name, result.spec)
            return result, distances
        result = self.store.ingest_prov(
            source, run_name=name, spec_name=spec_name
        )
        self._specs.setdefault(result.spec.name, result.spec)
        return result

    def export_prov(
        self, run_name: str, spec: Optional[str] = None
    ) -> str:
        """A stored run as deterministic PROV-JSON text (exact round trip)."""
        from repro.interchange.convert import export_run_json

        return export_run_json(self.run(run_name, spec=spec))

    # -- streaming ingestion -----------------------------------------------
    def stream(
        self,
        spec: str,
        run: str,
        session: Optional[str] = None,
        threshold: Optional[float] = None,
        mode: str = "auto",
        batch_size: int = 64,
    ):
        """Open a :class:`~repro.stream.client.StreamSession` in process.

        Events go straight into this workspace's :attr:`stream_hub`
        (through the NDJSON codec, so the in-process path exercises the
        exact wire protocol).  ``threshold`` arms the live divergence
        flag; ``run`` must not already exist in the corpus — nothing is
        persisted until the session's ``run_close``.
        """
        from repro.stream.client import StreamSession
        from repro.stream.events import decode_events

        hub = self.stream_hub
        return StreamSession(
            send=lambda data: hub.apply_batch(decode_events(data)),
            spec_name=spec,
            run_name=run,
            session_id=session,
            threshold=threshold,
            mode=mode,
            batch_size=batch_size,
        )

    def stream_live(self):
        """Live analytics of every open streaming session
        (:class:`~repro.stream.events.LiveStatus` objects)."""
        return self.stream_hub.live()

    def export_script(
        self,
        a: str,
        b: str,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
    ) -> dict:
        """The ``a``→``b`` edit script as a PROV-JSON document (dict)."""
        from repro.interchange.convert import export_script_document

        spec_name = self._spec_name(spec)
        outcome = self.diff(a, b, spec=spec_name, cost=cost)
        return export_script_document(
            outcome.operations,
            outcome.distance,
            a,
            b,
            spec_name=spec_name,
        )

    # -- viewing -----------------------------------------------------------
    def view(
        self,
        a: RunRef,
        b: RunRef,
        spec: Optional[str] = None,
        cost: Optional[CostModel] = None,
        record_intermediates: Optional[bool] = None,
    ) -> DiffView:
        """An interactive :class:`DiffView` over the ``a``→``b`` diff.

        The PDiffView surface: overview panes, per-operation stepping,
        and (when intermediates are recorded — the config default)
        graph snapshots after every operation.
        """
        cost = cost or self.config.cost
        record = (
            self.config.record_intermediates
            if record_intermediates is None
            else record_intermediates
        )
        spec_name, a, b = self._resolve_pair(a, b, spec)
        if spec_name is not None:
            a = self.service.load_run(spec_name, a)
            b = self.service.load_run(spec_name, b)
        return DiffView(
            diff_runs(a, b, cost=cost, record_intermediates=record)
        )

    def show_specification(self, spec: Optional[str] = None) -> str:
        """ASCII rendering of a specification's flow network."""
        from repro.pdiffview.render import render_graph

        return render_graph(
            self.specification(self._spec_name(spec)).graph
        )

    def show_run(
        self, run_name: str, spec: Optional[str] = None
    ) -> str:
        """ASCII rendering of a stored run's flow network."""
        from repro.pdiffview.render import render_graph

        return render_graph(self.run(run_name, spec=spec).graph)

    # -- introspection ------------------------------------------------------
    @property
    def stats(self) -> Dict[str, float]:
        """Cache/DP counters (plus derived ratios) of the service."""
        return self.service.stats

    def stats_snapshot(self) -> StatsSnapshot:
        """The service counters as a typed, transportable snapshot."""
        return StatsSnapshot(
            counters=dict(self.service.stats_counters),
            source="local",
            derived=dict(self.service.derived_stats),
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Workspace({str(self.store.root)!r}, "
            f"backend={self.backend.describe()})"
        )
