"""Picklable work payloads and module-level workers for the backends.

The corpus layer resolves runs (XML parse, fingerprint memo) in the
parent process, then ships these self-contained payloads to whichever
:class:`~repro.backends.base.ExecutorBackend` is configured.  Workers
are plain module-level functions — importable by name, the requirement
process pools impose — and return plain data (floats, operation lists),
never service handles.

A payload carries the two :class:`~repro.workflow.run.WorkflowRun`
objects and the cost model; a chunked process dispatch pickles each
chunk as one unit, so the shared specification object serialises once
per chunk, not once per pair (both runs of a pair — and usually the
whole corpus — reference the same spec).

Table sharing: in-process backends receive one
:class:`~repro.core.memo.SharedTables` from the service per batch.
Process workers cannot share the parent's memo (it is not picklable and
would not help across address spaces anyway); they keep a module-level
per-worker memo instead, keyed by cost-model identity.  Because a chunk
unpickles as one unit, the runs of a chunk alias each other's trees and
the chunk's pairs share tables exactly like the in-process path; the
memo holds strong references (no id reuse while an entry lives) and
dies with the worker — pools are created fresh per dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.api import diff_runs, distance_only
from repro.core.edit_script import PathOperation
from repro.core.memo import SharedTables
from repro.costs.base import CostModel
from repro.workflow.run import WorkflowRun


@dataclass
class DistanceTask:
    """One distance-only DP: ``δ(run_a, run_b)`` under ``cost``.

    ``run_a``/``run_b`` are already in the canonical (lexicographic)
    DP direction — the corpus layer orders them before dispatch so a
    cached value stays bit-identical to a fresh listing-order
    computation regardless of backend.

    ``kernel`` is the *resolved* convolution kernel for the batch;
    ``assume_aligned`` asserts that both runs are annotated against the
    same specification object, letting the worker skip the per-pair
    alignment check (the service loads batches through one spec).

    ``bound``/``cutoff`` ship the parent's packing lower bound (priced
    from persisted leaf profiles) and pruning threshold ``τ`` into the
    worker, so bound gating also prunes *inside* process-parallel
    batches: a worker whose ``bound`` strictly exceeds ``cutoff``
    returns ``inf`` without running the DP — the same strict
    inequality the parent-side gate uses, so the ranking the caller
    assembles is bit-identical to the ungated evaluation (a gated
    pair's true distance is ≥ bound > τ, so it can never enter the
    top-``k``, not even on a tie).  ``cutoff=None`` (the default)
    disables the gate.
    """

    run_a: WorkflowRun
    run_b: WorkflowRun
    cost: CostModel
    kernel: str = "python"
    assume_aligned: bool = False
    bound: float = 0.0
    cutoff: Optional[float] = None


@dataclass
class ScriptTask:
    """One full diff: the minimum-cost edit script for a directed pair."""

    run_a: WorkflowRun
    run_b: WorkflowRun
    cost: CostModel
    kernel: str = "python"


#: Per-worker table memo (process backend): cost identity → shared
#: tables.  Strong references keep ``id`` stable; cleared with the
#: worker process (pools are fresh per dispatch).
_WORKER_TABLES: Dict[Tuple[int, str], Tuple[CostModel, SharedTables]] = {}


#: Retire a worker memo entry once it holds this many run trees — a
#: backstop for long-lived processes calling the workers directly (the
#: intended users are short-lived pool workers, bounded by one batch).
_WORKER_TABLE_LIMIT = 512


def _worker_shared(cost: CostModel, kernel: str) -> SharedTables:
    key = (id(cost), kernel)
    entry = _WORKER_TABLES.get(key)
    if (
        entry is not None
        and entry[0] is cost
        and len(entry[1]) < _WORKER_TABLE_LIMIT
    ):
        return entry[1]
    shared = SharedTables(cost, kernel=kernel)
    _WORKER_TABLES[key] = (cost, shared)
    return shared


def compute_distance(task: DistanceTask, shared: Optional[SharedTables] = None) -> float:
    """Worker: the distance-only fast path for one pair.

    ``shared`` is supplied by in-process backends; process workers fall
    back to the module-level per-worker memo.
    """
    if task.cutoff is not None and task.bound > task.cutoff:
        # Worker-side bound gate: provably outside the caller's
        # top-k, skip the DP entirely.  ``inf`` is the sentinel the
        # service translates into a ``dp_skipped_by_bound`` credit —
        # it is never cached and never enters a returned ranking.
        return float("inf")
    if shared is None:
        shared = _worker_shared(task.cost, task.kernel)
    return distance_only(
        task.run_a,
        task.run_b,
        cost=task.cost,
        assume_aligned=task.assume_aligned,
        shared=shared,
        kernel=task.kernel,
    )


def compute_script(
    task: ScriptTask, shared: Optional[SharedTables] = None
) -> Tuple[float, List[PathOperation]]:
    """Worker: one full diff, returned as ``(distance, operations)``."""
    if shared is None:
        shared = _worker_shared(task.cost, task.kernel)
    result = diff_runs(
        task.run_a,
        task.run_b,
        cost=task.cost,
        with_script=True,
        shared=shared,
        kernel=task.kernel,
    )
    return result.distance, list(result.script.operations)
