"""Picklable work payloads and module-level workers for the backends.

The corpus layer resolves runs (XML parse, fingerprint memo) in the
parent process, then ships these self-contained payloads to whichever
:class:`~repro.backends.base.ExecutorBackend` is configured.  Workers
are plain module-level functions — importable by name, the requirement
process pools impose — and return plain data (floats, operation lists),
never service handles.

A payload carries the two :class:`~repro.workflow.run.WorkflowRun`
objects and the cost model; a chunked process dispatch pickles each
chunk as one unit, so the shared specification object serialises once
per chunk, not once per pair (both runs of a pair — and usually the
whole corpus — reference the same spec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.api import diff_runs, distance_only
from repro.core.edit_script import PathOperation
from repro.costs.base import CostModel
from repro.workflow.run import WorkflowRun


@dataclass
class DistanceTask:
    """One distance-only DP: ``δ(run_a, run_b)`` under ``cost``.

    ``run_a``/``run_b`` are already in the canonical (lexicographic)
    DP direction — the corpus layer orders them before dispatch so a
    cached value stays bit-identical to a fresh listing-order
    computation regardless of backend.
    """

    run_a: WorkflowRun
    run_b: WorkflowRun
    cost: CostModel


@dataclass
class ScriptTask:
    """One full diff: the minimum-cost edit script for a directed pair."""

    run_a: WorkflowRun
    run_b: WorkflowRun
    cost: CostModel


def compute_distance(task: DistanceTask) -> float:
    """Worker: the distance-only fast path for one pair."""
    return distance_only(task.run_a, task.run_b, cost=task.cost)


def compute_script(
    task: ScriptTask,
) -> Tuple[float, List[PathOperation]]:
    """Worker: one full diff, returned as ``(distance, operations)``."""
    result = diff_runs(
        task.run_a, task.run_b, cost=task.cost, with_script=True
    )
    return result.distance, list(result.script.operations)
