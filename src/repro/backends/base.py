"""The :class:`ExecutorBackend` contract and its three implementations.

A backend executes a *batch*: a module-level worker function applied to
a sequence of task payloads, returning results in input order.  The
contract is deliberately tiny — ``map(func, tasks)`` — so the corpus
layer can route every CPU-heavy batch (distance sweeps, batch script
generation) through one seam, and so new substrates (a cluster RPC, an
async gateway) can slot in without touching the services above.

Requirements on ``func`` and ``tasks`` differ per backend:

* serial/thread backends accept any callable and any objects;
* the process backend requires ``func`` to be an importable
  module-level function and every task to be picklable (see
  :mod:`repro.backends.work` for the payload types the corpus layer
  sends).  Unpicklable work is rejected up front with a
  :class:`~repro.errors.ReproError` naming the offending payload,
  instead of a cryptic pool crash mid-batch.
"""

from __future__ import annotations

import abc
import concurrent.futures
import os
import pickle
from typing import Callable, List, Optional, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")
R = TypeVar("R")

#: The names :func:`make_backend` (and the CLI ``--backend`` flag) accept.
BACKEND_NAMES = ("serial", "thread", "process")


def _default_jobs() -> int:
    """Worker count when the caller does not pin one (>= 1)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class ExecutorBackend(abc.ABC):
    """Executes batches of independent tasks; results keep input order.

    Attributes
    ----------
    name:
        Stable identifier (``"serial"``, ``"thread"``, ``"process"`` for
        the built-ins); benchmarks and the CLI key on it.
    jobs:
        Degree of parallelism, ``None`` meaning "pick for the machine".
    """

    name: str = "abstract"

    #: True when tasks cross a process boundary: the caller must send
    #: picklable payloads and an importable worker function.  In-process
    #: backends accept closures, which lets callers defer per-task
    #: resolution (e.g. store reads) into the workers to overlap I/O.
    requires_pickling: bool = False

    def __init__(self, jobs: Optional[int] = None):
        if jobs is not None and jobs < 1:
            raise ReproError(f"backend jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    @property
    def effective_jobs(self) -> int:
        """The concrete worker count this backend will use."""
        return self.jobs if self.jobs is not None else _default_jobs()

    @abc.abstractmethod
    def map(
        self, func: Callable[[T], R], tasks: Sequence[T]
    ) -> List[R]:
        """Apply ``func`` to every task; return results in input order.

        A task that raises propagates the exception to the caller (the
        batch is abandoned) — corpus invariants never survive partially
        applied batches silently.
        """

    def describe(self) -> str:
        """Human-readable identity, e.g. ``process(jobs=8)``."""
        jobs = self.jobs if self.jobs is not None else "auto"
        return f"{self.name}(jobs={jobs})"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(jobs={self.jobs!r})"


class SerialBackend(ExecutorBackend):
    """In-process, sequential execution — the reference backend."""

    name = "serial"

    @property
    def effective_jobs(self) -> int:
        """Always 1: serial execution has no parallelism to size for
        (callers batch work by this — e.g. streaming chunk sizes)."""
        return 1

    def map(self, func, tasks):
        """Run every task inline, in order."""
        return [func(task) for task in tasks]


class ThreadBackend(ExecutorBackend):
    """A thread pool: overlaps the I/O share of a batch under the GIL."""

    name = "thread"

    def map(self, func, tasks):
        """Fan the batch over a thread pool (inline when trivial)."""
        tasks = list(tasks)
        if len(tasks) <= 1 or self.jobs == 1:
            return [func(task) for task in tasks]
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.jobs
        ) as pool:
            return list(pool.map(func, tasks))


class ProcessBackend(ExecutorBackend):
    """A process pool: the DP runs on every core, payloads are pickled.

    Tasks are dispatched in chunks (``~4`` chunks per worker) so the
    per-task pickling overhead amortises — a chunk is pickled as one
    unit, letting the pickle memo share the specification object across
    the pairs of a chunk instead of re-serialising it per pair.
    """

    name = "process"
    requires_pickling = True

    def map(self, func, tasks):
        """Fan the batch over worker processes.

        Raises
        ------
        ReproError
            When a payload (or the worker function) is unpicklable, or
            when the pool dies mid-batch.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._check_picklable(func, tasks)
        workers = min(self.effective_jobs, len(tasks))
        chunksize = max(1, len(tasks) // (workers * 4))
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                return list(pool.map(func, tasks, chunksize=chunksize))
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            # A task past the probe (or a worker's return value)
            # refused to pickle mid-batch.  Unpicklable objects raise
            # TypeError ("cannot pickle ... object") or AttributeError
            # ("Can't pickle local object ...") as often as
            # PicklingError, so those types are claimed only when the
            # message is about pickling — a worker's own
            # TypeError/AttributeError propagates untouched.
            if "pickle" not in str(exc).lower():
                raise
            raise ReproError(
                "process backend requires picklable tasks and "
                f"results; a payload failed mid-batch: {exc}"
            ) from exc
        except concurrent.futures.process.BrokenProcessPool as exc:
            raise ReproError(
                "process backend lost its worker pool mid-batch "
                f"({exc}); re-run with backend='thread' to diagnose "
                "in-process"
            ) from exc

    @staticmethod
    def _check_picklable(func, tasks) -> None:
        """Reject the common unpicklable work up front, precisely.

        Only the first task is probed (probing all would double the
        pickling cost of every batch): corpus batches share one payload
        type and cost model, so this catches the typical failures — a
        lambda-based ``CallableCost``, an unpicklable worker function —
        before any worker starts.  A payload that only fails deeper in
        the batch is still rejected as a :class:`ReproError` by the
        mid-batch handler in :meth:`map`.
        """
        for label, probe in (("worker function", func), ("task", tasks[0])):
            try:
                pickle.dumps(probe)
            except Exception as exc:
                raise ReproError(
                    f"process backend requires a picklable {label}; "
                    f"{probe!r} failed to pickle: {exc}"
                ) from exc


def make_backend(
    backend, jobs: Optional[int] = None
) -> ExecutorBackend:
    """Resolve a backend spec — a name or an instance — to an instance.

    ``backend`` may be one of :data:`BACKEND_NAMES` or an
    :class:`ExecutorBackend` (returned as-is; ``jobs`` must then be
    ``None`` — the instance already carries its own width).
    """
    if isinstance(backend, ExecutorBackend):
        if jobs is not None and jobs != backend.jobs:
            raise ReproError(
                "jobs= conflicts with an already-constructed backend "
                f"({backend.describe()}); set jobs on the backend"
            )
        return backend
    table = {
        "serial": SerialBackend,
        "thread": ThreadBackend,
        "process": ProcessBackend,
    }
    try:
        factory = table[str(backend).strip().lower()]
    except KeyError:
        raise ReproError(
            f"unknown backend {backend!r} "
            f"(expected one of {', '.join(BACKEND_NAMES)})"
        ) from None
    return factory(jobs)
