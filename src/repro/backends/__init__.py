"""Pluggable execution backends for corpus-scale differencing.

The edit-distance DP is pure Python and O(|E|³), so *where* a batch of
pairwise diffs executes determines how the corpus layer scales:

* :class:`SerialBackend` — in-process, one pair at a time.  Zero
  overhead, deterministic scheduling; the baseline every other backend
  is checked against.
* :class:`ThreadBackend` — a :class:`concurrent.futures`
  ``ThreadPoolExecutor``.  Under the GIL only the I/O/parsing share of
  a batch overlaps, but the backend is cheap to spin up and never
  requires picklable payloads.
* :class:`ProcessBackend` — a ``ProcessPoolExecutor``.  Payloads are
  pickled to worker processes, so the DP itself runs on every core;
  this is the backend that makes a cold ``distance_matrix`` scale with
  the machine (see ``benchmarks/bench_backends.py``).

All three implement the :class:`ExecutorBackend` contract — ``map`` a
module-level worker function over picklable task payloads — and are
interchangeable by construction: property tests assert bit-identical
distance matrices and edit-script costs across backends.  Select one
through :class:`repro.config.ReproConfig` (``backend="process"``,
``jobs=8``) or pass an instance anywhere a backend is accepted.
"""

from repro.backends.base import (
    BACKEND_NAMES,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.backends.work import (
    DistanceTask,
    ScriptTask,
    compute_distance,
    compute_script,
)

__all__ = [
    "BACKEND_NAMES",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "DistanceTask",
    "ScriptTask",
    "compute_distance",
    "compute_script",
]
