"""Reproduction of *Differencing Provenance in Scientific Workflows*.

Bao, Cohen-Boulakia, Davidson, Eyal, Khanna (ICDE 2009 / UPenn TR
MS-CIS-08-04).  The library implements the SP-workflow model (series-
parallel specifications overlaid with well-nested forks and loops), the
polynomial-time run-differencing algorithms (annotated SP-trees, subtree
deletion DP, Hungarian and non-crossing matchings), minimum-cost edit
scripts with valid intermediates, and the PDiffView prototype.

Quickstart
----------
The client API is the :class:`Workspace`: one façade over storage,
differencing, querying, interchange and viewing, configured by a single
:class:`ReproConfig` (cost model, execution backend, parallelism,
caches):

>>> from repro import ReproConfig, Workspace, protein_annotation
>>> ws = Workspace(path, ReproConfig(backend="process"))  # doctest: +SKIP
>>> ws.register(protein_annotation())
>>> ws.generate_run("monday", seed=1)
>>> ws.generate_run("tuesday", seed=2)
>>> ws.diff("monday", "tuesday").distance >= 0
True

The pre-workspace entry points (``diff_runs``, ``DiffService``,
``PDiffViewSession``, ``QueryEngine``) remain importable from here as
deprecated shims; ``docs/MIGRATION.md`` maps every legacy call site to
its workspace equivalent.
"""

import warnings as _warnings

from repro.api_types import (
    DiffOutcome,
    ErrorEnvelope,
    ImportSummary,
    MatrixResult,
    QueryFilter,
    QueryPage,
    StatsSnapshot,
    StreamSummary,
    WorkspaceAPI,
)
from repro.backends.base import (
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.client import RemoteWorkspace
from repro.config import ReproConfig
from repro.core.api import (
    DiffResult,
    distance_only,
    edit_distance,
)
from repro.core.verify import VerificationReport, verify_diff
from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.costs.base import CostModel
from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    LengthCost,
    PowerCost,
    UnitCost,
)
from repro.errors import (
    ConflictError,
    CostModelError,
    EditScriptError,
    GraphStructureError,
    InterchangeError,
    InvalidRunError,
    MatchingError,
    NotFoundError,
    NotSeriesParallelError,
    ReproError,
    SpecificationError,
)
from repro.graphs.flow_network import FlowNetwork
from repro.interchange import (
    ImportResult,
    NormalizationReport,
    export_run_document,
    export_run_json,
    export_script_document,
    import_document,
)
from repro.obs import (
    MetricsRegistry,
    RunMetadata,
    configure_logging,
    get_logger,
)
from repro.pdiffview.session import DiffView
from repro.service import DiffServer, serve
from repro.stream import (
    IncrementalNormalizer,
    LiveStatus,
    StreamAck,
    StreamHub,
    StreamSession,
)
from repro.query.aggregate import (
    GroupDivergence,
    ModuleChurn,
    module_churn,
    op_kind_histogram,
)
from repro.query.engine import ScriptDoc
from repro.query.predicates import Predicate, Q
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    random_prov_document,
    random_run_pair,
    random_sp_graph,
    random_specification,
)
from repro.workflow.real_workflows import (
    all_real_workflows,
    baidd,
    emboss,
    mb,
    pgaq,
    protein_annotation,
    saxpf,
)
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification
from repro.workspace import Workspace

__version__ = "1.6.0"

#: Legacy entry points, kept importable as deprecated shims.  Each maps
#: to ``(defining module, attribute, workspace replacement)``; accessing
#: ``repro.<name>`` emits exactly one :class:`DeprecationWarning` and
#: returns the real object, so existing code keeps working unchanged.
#: New code (and everything inside this package) imports from the
#: defining modules or uses the :class:`Workspace` API directly —
#: ``python -W error::DeprecationWarning`` runs clean unless a caller
#: touches a legacy name.
_DEPRECATED = {
    "diff_runs": (
        "repro.core.api",
        "diff_runs",
        "Workspace.diff(a, b) (repro.core.api.diff_runs for the "
        "low-level two-run form)",
    ),
    "DiffService": (
        "repro.corpus.service",
        "DiffService",
        "Workspace (matrix/diff_many/nearest on a configured backend)",
    ),
    "PDiffViewSession": (
        "repro.pdiffview.session",
        "PDiffViewSession",
        "Workspace (register/generate_run/diff/view/import_prov)",
    ),
    "QueryEngine": (
        "repro.query.engine",
        "QueryEngine",
        "Workspace.query / Workspace.engine",
    ),
}


def __getattr__(name):
    """Serve the legacy entry points lazily, with a deprecation notice."""
    try:
        module_name, attribute, replacement = _DEPRECATED[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead "
        "(see docs/MIGRATION.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED))


__all__ = [
    "__version__",
    # -- the client API ------------------------------------------------
    "WorkspaceAPI",
    "Workspace",
    "RemoteWorkspace",
    "ReproConfig",
    "DiffOutcome",
    "MatrixResult",
    "QueryFilter",
    "QueryPage",
    "StatsSnapshot",
    "ImportSummary",
    "ErrorEnvelope",
    "DiffView",
    # -- the HTTP diff service -------------------------------------------
    "DiffServer",
    "serve",
    # -- streaming ingestion ---------------------------------------------
    "StreamSession",
    "StreamHub",
    "StreamAck",
    "StreamSummary",
    "LiveStatus",
    "IncrementalNormalizer",
    # -- observability --------------------------------------------------
    "MetricsRegistry",
    "RunMetadata",
    "configure_logging",
    "get_logger",
    # -- execution backends --------------------------------------------
    "ExecutorBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    # -- core differencing ----------------------------------------------
    "edit_distance",
    "distance_only",
    "DiffResult",
    "verify_diff",
    "VerificationReport",
    # -- querying --------------------------------------------------------
    "Q",
    "Predicate",
    "ScriptDoc",
    "op_kind_histogram",
    "module_churn",
    "ModuleChurn",
    "GroupDivergence",
    # -- corpus fingerprints ---------------------------------------------
    "run_fingerprint",
    "spec_fingerprint",
    # -- model -----------------------------------------------------------
    "FlowNetwork",
    "WorkflowSpecification",
    "WorkflowRun",
    "ExecutionParams",
    "execute_workflow",
    # -- cost models -----------------------------------------------------
    "CostModel",
    "UnitCost",
    "LengthCost",
    "PowerCost",
    "LabelWeightedCost",
    "CallableCost",
    # -- generators ------------------------------------------------------
    "random_sp_graph",
    "random_specification",
    "random_run_pair",
    "random_prov_document",
    # -- interchange -----------------------------------------------------
    "ImportResult",
    "NormalizationReport",
    "import_document",
    "export_run_document",
    "export_run_json",
    "export_script_document",
    # -- real workflows --------------------------------------------------
    "all_real_workflows",
    "protein_annotation",
    "emboss",
    "saxpf",
    "mb",
    "pgaq",
    "baidd",
    # -- errors ----------------------------------------------------------
    "ReproError",
    "NotFoundError",
    "ConflictError",
    "GraphStructureError",
    "NotSeriesParallelError",
    "SpecificationError",
    "InvalidRunError",
    "CostModelError",
    "EditScriptError",
    "MatchingError",
    "InterchangeError",
]

# The deprecated shims (``diff_runs``, ``DiffService``,
# ``PDiffViewSession``, ``QueryEngine``) are deliberately *not* in
# ``__all__``: a star import must not drag legacy names (and their
# warnings) into code that only uses the Workspace API.  They remain
# importable by name through ``__getattr__`` above and are listed by
# ``dir(repro)``.
