"""Reproduction of *Differencing Provenance in Scientific Workflows*.

Bao, Cohen-Boulakia, Davidson, Eyal, Khanna (ICDE 2009 / UPenn TR
MS-CIS-08-04).  The library implements the SP-workflow model (series-
parallel specifications overlaid with well-nested forks and loops), the
polynomial-time run-differencing algorithms (annotated SP-trees, subtree
deletion DP, Hungarian and non-crossing matchings), minimum-cost edit
scripts with valid intermediates, and the PDiffView prototype.

Quickstart
----------
>>> from repro import protein_annotation, execute_workflow, diff_runs
>>> spec = protein_annotation()
>>> run1 = execute_workflow(spec, seed=1)
>>> run2 = execute_workflow(spec, seed=2)
>>> result = diff_runs(run1, run2)
>>> result.distance >= 0
True
"""

from repro.core.api import (
    DiffResult,
    diff_runs,
    distance_only,
    edit_distance,
)
from repro.core.verify import VerificationReport, verify_diff
from repro.corpus.fingerprint import run_fingerprint, spec_fingerprint
from repro.corpus.service import DiffService
from repro.costs.base import CostModel
from repro.costs.standard import (
    CallableCost,
    LabelWeightedCost,
    LengthCost,
    PowerCost,
    UnitCost,
)
from repro.errors import (
    CostModelError,
    EditScriptError,
    GraphStructureError,
    InterchangeError,
    InvalidRunError,
    MatchingError,
    NotSeriesParallelError,
    ReproError,
    SpecificationError,
)
from repro.graphs.flow_network import FlowNetwork
from repro.interchange import (
    ImportResult,
    NormalizationReport,
    export_run_document,
    export_run_json,
    export_script_document,
    import_document,
)
from repro.pdiffview.session import DiffView, PDiffViewSession
from repro.query.aggregate import (
    GroupDivergence,
    ModuleChurn,
    module_churn,
    op_kind_histogram,
)
from repro.query.engine import QueryEngine, ScriptDoc
from repro.query.predicates import Predicate, Q
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.generators import (
    random_prov_document,
    random_run_pair,
    random_sp_graph,
    random_specification,
)
from repro.workflow.real_workflows import (
    all_real_workflows,
    baidd,
    emboss,
    mb,
    pgaq,
    protein_annotation,
    saxpf,
)
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "diff_runs",
    "edit_distance",
    "distance_only",
    "DiffResult",
    "DiffService",
    "Q",
    "Predicate",
    "QueryEngine",
    "ScriptDoc",
    "op_kind_histogram",
    "module_churn",
    "ModuleChurn",
    "GroupDivergence",
    "run_fingerprint",
    "spec_fingerprint",
    "verify_diff",
    "VerificationReport",
    "FlowNetwork",
    "WorkflowSpecification",
    "WorkflowRun",
    "ExecutionParams",
    "execute_workflow",
    "CostModel",
    "UnitCost",
    "LengthCost",
    "PowerCost",
    "LabelWeightedCost",
    "CallableCost",
    "random_sp_graph",
    "random_specification",
    "random_run_pair",
    "random_prov_document",
    "PDiffViewSession",
    "DiffView",
    "ImportResult",
    "NormalizationReport",
    "import_document",
    "export_run_document",
    "export_run_json",
    "export_script_document",
    "all_real_workflows",
    "protein_annotation",
    "emboss",
    "saxpf",
    "mb",
    "pgaq",
    "baidd",
    "ReproError",
    "GraphStructureError",
    "NotSeriesParallelError",
    "SpecificationError",
    "InvalidRunError",
    "CostModelError",
    "EditScriptError",
    "MatchingError",
    "InterchangeError",
]
