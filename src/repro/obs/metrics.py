"""A thread-safe metrics registry: counters, gauges, histograms.

Stdlib only — no ``prometheus_client``.  The design is write-locked,
**lock-free to read**: every update (``inc``/``set``/``observe``) takes
the metric's own mutex, while scrapes (:meth:`MetricsRegistry.snapshot`
and :meth:`MetricsRegistry.render_prometheus`) walk plain dicts without
acquiring any lock — under CPython's GIL a reader sees each sample
either before or after an update, never torn, so a scrape can never
stall the request path (and a wedged request thread can never stall a
scrape).

Metrics are identified by name and an optional set of labels; every
``(name, labels)`` combination is an independent sample series::

    registry = MetricsRegistry()
    requests = registry.counter(
        "server_requests_total", "Requests handled."
    )
    requests.inc(route="/healthz", method="GET", status="200")
    latency = registry.histogram(
        "server_request_seconds", "Request latency."
    )
    with latency.time(route="/healthz"):
        ...

A registry built with ``enabled=False`` accepts the same calls as
no-ops (near-zero cost), so instrumented code never branches on
configuration — ``REPRO_METRICS=off`` simply hands the stack a disabled
registry.

Rendering follows the Prometheus text exposition format (version
0.0.4): ``# HELP``/``# TYPE`` preambles, label-sorted sample lines,
cumulative histogram buckets with the ``+Inf`` terminator and
``_sum``/``_count`` series.  :meth:`MetricsRegistry.snapshot` returns
the same data as a JSON-safe dict for the ``/metrics?format=json``
face.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Fixed latency buckets (seconds): sub-millisecond cache hits through
#: multi-second cold DP batches.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: A label set's canonical identity: name-sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus sample value: integral floats render as integers."""
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing: one mutex, one ``labels -> state`` table."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, enabled: bool = True):
        self.name = name
        self.help_text = help_text
        self.enabled = enabled
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}

    def _samples(self) -> List[Tuple[LabelKey, Any]]:
        """A stable, lock-free listing of the sample series."""
        return sorted(self._series.items())


class BoundCounter:
    """One pre-resolved label combination of a :class:`Counter`.

    Hot paths (cache lookups, monitor acquisitions) increment the same
    label set millions of times; :meth:`Counter.bind` resolves the
    label key once so each increment is just the mutex and the add.
    """

    __slots__ = ("_counter", "_key")

    def __init__(self, counter: "Counter", key: LabelKey):
        self._counter = counter
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        counter = self._counter
        if not counter.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {counter.name} cannot decrease (got {amount})"
            )
        with counter._lock:
            counter._series[self._key] = (
                counter._series.get(self._key, 0.0) + amount
            )


class Counter(_Metric):
    """A monotonically increasing sum (per label combination).

    Two feeding styles:

    * **event-driven** — :meth:`inc` per occurrence (or a pre-bound
      :class:`BoundCounter` from :meth:`bind` on hot paths);
    * **collected** — :meth:`set_function` backs a series with a
      scrape-time callable, for components that already keep an exact
      count under their own lock (cache hit tallies, monitor
      acquisition counts).  Collection costs the hot path *nothing*.
    """

    kind = "counter"

    def bind(self, **labels: str) -> BoundCounter:
        """A pre-resolved handle for one label combination."""
        return BoundCounter(self, _label_key(labels))

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if not self.enabled:
            return
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})"
            )
        key = _label_key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            if callable(current):
                raise ValueError(
                    f"counter {self.name} series is callback-backed"
                )
            self._series[key] = current + amount

    def set_function(
        self, fn: Callable[[], float], **labels: str
    ) -> None:
        """Back the labelled series with a scrape-time callable."""
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = fn

    def value(self, **labels: str) -> float:
        """The labelled series' current value (0 when never touched)."""
        current = self._series.get(_label_key(labels), 0.0)
        return float(current() if callable(current) else current)

    def total(self) -> float:
        """The sum across every label combination."""
        return float(sum(value for _, value in self._resolved()))

    def _resolved(self) -> List[Tuple[LabelKey, float]]:
        resolved = []
        for key, value in self._samples():
            try:
                resolved.append(
                    (key, float(value() if callable(value) else value))
                )
            except Exception:  # noqa: BLE001 - a broken collector
                continue  # must not take the whole scrape down
        return resolved

    def render(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in self._resolved()
        ]

    def snapshot_samples(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in self._resolved()
        ]


class Gauge(_Metric):
    """A value that goes up and down — or is pulled from a callback.

    :meth:`set_function` turns a labelled series into a *collector*:
    the callable is invoked at scrape time, so derived quantities
    (cache sizes, index document counts) stay exact without any
    event-driven bookkeeping.
    """

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            current = self._series.get(key, 0.0)
            if callable(current):
                raise ValueError(
                    f"gauge {self.name} series is callback-backed"
                )
            self._series[key] = current + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_function(
        self, fn: Callable[[], float], **labels: str
    ) -> None:
        """Back the labelled series with a scrape-time callable."""
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = fn

    def value(self, **labels: str) -> float:
        current = self._series.get(_label_key(labels), 0.0)
        return float(current() if callable(current) else current)

    def _resolved(self) -> List[Tuple[LabelKey, float]]:
        resolved = []
        for key, value in self._samples():
            try:
                resolved.append(
                    (key, float(value() if callable(value) else value))
                )
            except Exception:  # noqa: BLE001 - a broken collector
                continue  # must not take the whole scrape down
        return resolved

    def render(self) -> List[str]:
        return [
            f"{self.name}{_render_labels(key)} {_format_value(value)}"
            for key, value in self._resolved()
        ]

    def snapshot_samples(self) -> List[dict]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in self._resolved()
        ]


class _HistogramSeries:
    """One label combination's bucket counts, sum and count."""

    __slots__ = ("counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution of observed values (e.g. latencies)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        enabled: bool = True,
    ):
        super().__init__(name, help_text, enabled)
        ordered = tuple(float(b) for b in buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name} buckets must be strictly "
                f"increasing and non-empty: {buckets!r}"
            )
        self.buckets = ordered

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the labelled series."""
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.counts[i] += 1
            series.total += value
            series.count += 1

    def time(self, **labels: str) -> "_Timer":
        """Context manager observing the block's wall-clock seconds."""
        return _Timer(self, labels)

    def count(self, **labels: str) -> int:
        """Observation count of the labelled series."""
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series.count

    def sum(self, **labels: str) -> float:
        """Observation sum of the labelled series."""
        series = self._series.get(_label_key(labels))
        return 0.0 if series is None else series.total

    def render(self) -> List[str]:
        lines = []
        for key, series in self._samples():
            for bound, cumulative in zip(self.buckets, series.counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, [('le', _format_value(bound))])}"
                    f" {cumulative}"
                )
            lines.append(
                f"{self.name}_bucket"
                f"{_render_labels(key, [('le', '+Inf')])} {series.count}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(series.total)}"
            )
            lines.append(
                f"{self.name}_count{_render_labels(key)} {series.count}"
            )
        return lines

    def snapshot_samples(self) -> List[dict]:
        return [
            {
                "labels": dict(key),
                "buckets": {
                    _format_value(bound): cumulative
                    for bound, cumulative in zip(
                        self.buckets, series.counts
                    )
                },
                "sum": series.total,
                "count": series.count,
            }
            for key, series in self._samples()
        ]


class _Timer:
    """The context manager :meth:`Histogram.time` hands out."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: Histogram, labels: Dict[str, str]):
        self._histogram = histogram
        self._labels = labels

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(
            time.perf_counter() - self._start, **self._labels
        )


class MetricsRegistry:
    """A named collection of metrics with dual rendering faces.

    Metric constructors are get-or-create by name (the second caller
    receives the first caller's object), so independently instrumented
    components can share series without plumbing metric objects around.
    Asking for an existing name with a different metric kind raises —
    that is always a programming error.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, klass, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, klass):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {klass.kind}"
                    )
                return existing
            metric = klass(
                name, help_text, enabled=self.enabled, **kwargs
            )
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        """The named metric, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    # -- rendering ------------------------------------------------------
    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help_text:
                lines.append(
                    f"# HELP {name} "
                    + metric.help_text.replace("\\", "\\\\").replace(
                        "\n", "\\n"
                    )
                )
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> Dict[str, dict]:
        """The registry as a JSON-safe dict (the ``/metrics`` JSON face)."""
        return {
            name: {
                "type": self._metrics[name].kind,
                "help": self._metrics[name].help_text,
                "samples": self._metrics[name].snapshot_samples(),
            }
            for name in self.names()
        }
