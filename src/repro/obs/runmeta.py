"""Operational run metadata: who ingested what, where, when.

CWLProv keeps an operational account alongside every workflow result —
the account's creating user, host, start/end timestamps and tool
version.  :class:`RunMetadata` is this library's equivalent for stored
runs: captured automatically whenever a run is persisted (native saves
and ``POST /prov/import`` ingests alike), written as a
``<run>.meta.json`` sidecar next to the run document by
:meth:`repro.io.store.WorkflowStore.save_run`, and surfaced through
:class:`repro.api_types.QueryFilter`'s ``users``/``hosts`` clauses so a
corpus can be sliced per-user or per-host — the future shard key.

Metadata is *operational*, not semantic: it never participates in
fingerprints, distances, or interchange round trips, and a run without
a sidecar (e.g. written by an older version) is simply a run with no
metadata — every reader treats the sidecar as optional.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["META_VERSION", "RunMetadata", "capture_run_metadata"]

#: Sidecar schema version (independent of the HTTP wire version).
META_VERSION = 1


def _utc_now() -> str:
    """The current instant as an ISO-8601 UTC timestamp."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def _current_user() -> str:
    try:
        import getpass

        return getpass.getuser()
    except Exception:  # noqa: BLE001 - no login database, no $USER, ...
        return "unknown"


def _current_host() -> str:
    try:
        import socket

        return socket.gethostname()
    except Exception:  # noqa: BLE001 - defensive: metadata best-effort
        return "unknown"


def _tool_version() -> str:
    import repro

    return repro.__version__


@dataclass(frozen=True)
class RunMetadata:
    """The operational account of one persisted run."""

    user: str
    host: str
    started: str  #: ISO-8601 UTC instant the ingest began
    ended: str  #: ISO-8601 UTC instant the ingest finished
    tool_version: str
    origin: str = "native"  #: ``native`` or the import origin
    request_id: Optional[str] = None  #: HTTP correlation ID, if any

    def to_dict(self) -> dict:
        """JSON-safe sidecar payload."""
        payload = {
            "v": META_VERSION,
            "user": self.user,
            "host": self.host,
            "started": self.started,
            "ended": self.ended,
            "tool_version": self.tool_version,
            "origin": self.origin,
        }
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> Optional["RunMetadata"]:
        """Rebuild from a sidecar payload; ``None`` on any malformation
        (metadata is best-effort — a corrupt sidecar is no sidecar)."""
        if not isinstance(payload, dict):
            return None
        if payload.get("v") != META_VERSION:
            return None
        try:
            request_id = payload.get("request_id")
            return cls(
                user=str(payload["user"]),
                host=str(payload["host"]),
                started=str(payload["started"]),
                ended=str(payload["ended"]),
                tool_version=str(payload["tool_version"]),
                origin=str(payload.get("origin", "native")),
                request_id=(
                    None if request_id is None else str(request_id)
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None


def capture_run_metadata(
    origin: str = "native",
    started: Optional[str] = None,
    ended: Optional[str] = None,
) -> RunMetadata:
    """Capture the current operational context as :class:`RunMetadata`.

    ``started``/``ended`` default to now (callers that bracket a longer
    ingest pass their own instants); the request ID is picked up from
    the logging context automatically when the capture happens inside
    an HTTP request.
    """
    from repro.obs.logging import current_request_id

    now = _utc_now()
    return RunMetadata(
        user=_current_user(),
        host=_current_host(),
        started=started if started is not None else now,
        ended=ended if ended is not None else now,
        tool_version=_tool_version(),
        origin=origin,
        request_id=current_request_id(),
    )
