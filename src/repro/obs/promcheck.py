"""Prometheus text-exposition validator (the in-repo scrape checker).

No third-party dependency ships a parser here, so CI validates the
``/metrics`` output with this ~hundred-line checker instead:
:func:`parse_exposition` parses exposition text into
``{metric family: {"type": ..., "samples": [(name, labels, value)]}}``
and raises :class:`ExpositionError` on any syntax violation — stray
lines, samples without a preceding ``# TYPE``, malformed label sets,
unparsable values, histogram families missing their ``_sum`` /
``_count`` series.

Runnable as a module against a file or a live endpoint::

    python -m repro.obs.promcheck metrics.txt
    python -m repro.obs.promcheck http://127.0.0.1:8321/metrics

Exit code 0 when the input parses (a one-line summary is printed),
1 with the violation on stderr otherwise.  The golden tests drive the
same function, so the renderer in :mod:`repro.obs.metrics` and this
checker cannot drift apart.
"""

from __future__ import annotations

import re
import sys
from typing import Dict, List

__all__ = ["ExpositionError", "parse_exposition"]

#: Prometheus metric and label name grammar.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*(?:,|$)'
)
_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class ExpositionError(ValueError):
    """The input is not valid Prometheus text exposition."""


def _fail(line_no: int, line: str, why: str) -> None:
    raise ExpositionError(f"line {line_no}: {why}: {line!r}")


def _parse_labels(raw: str, line_no: int, line: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_RE.match(raw, position)
        if match is None:
            _fail(line_no, line, "malformed label set")
        value = match.group("value")
        labels[match.group("name")] = (
            value.replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        position = match.end()
    return labels


def _family_of(sample_name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def parse_exposition(text: str) -> Dict[str, dict]:
    """Parse (and validate) Prometheus text exposition.

    Returns ``{family: {"type": str, "help": str, "samples": [...]}}``
    where each sample is ``(sample_name, labels_dict, float_value)``.
    Raises :class:`ExpositionError` on any violation.
    """
    families: Dict[str, dict] = {}
    declared_type: Dict[str, str] = {}
    for line_no, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                _fail(line_no, line, "malformed HELP comment")
            families.setdefault(
                parts[2], {"type": "untyped", "help": "", "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                _fail(line_no, line, "malformed TYPE comment")
            if parts[3] not in _TYPES:
                _fail(line_no, line, f"unknown metric type {parts[3]!r}")
            if parts[2] in declared_type:
                _fail(line_no, line, "duplicate TYPE declaration")
            declared_type[parts[2]] = parts[3]
            families.setdefault(
                parts[2], {"type": "untyped", "help": "", "samples": []}
            )["type"] = parts[3]
            continue
        if line.startswith("#"):
            continue  # free-form comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            _fail(line_no, line, "malformed sample line")
        name = match.group("name")
        labels = _parse_labels(
            match.group("labels") or "", line_no, line
        )
        raw_value = match.group("value")
        if raw_value in ("+Inf", "-Inf", "NaN"):
            value = float(raw_value.replace("Inf", "inf"))
        else:
            try:
                value = float(raw_value)
            except ValueError:
                _fail(line_no, line, f"unparsable value {raw_value!r}")
        family = _family_of(name)
        if family not in declared_type and name not in declared_type:
            _fail(line_no, line, "sample precedes its TYPE declaration")
        target = family if family in declared_type else name
        families.setdefault(
            target, {"type": "untyped", "help": "", "samples": []}
        )["samples"].append((name, labels, value))
    _check_histograms(families)
    return families


def _check_histograms(families: Dict[str, dict]) -> None:
    for family, info in families.items():
        if info["type"] != "histogram":
            continue
        names = [sample[0] for sample in info["samples"]]
        for required in (f"{family}_bucket", f"{family}_sum",
                         f"{family}_count"):
            if info["samples"] and required not in names:
                raise ExpositionError(
                    f"histogram {family} is missing its "
                    f"{required} series"
                )
        for name, labels, _ in info["samples"]:
            if name == f"{family}_bucket" and "le" not in labels:
                raise ExpositionError(
                    f"histogram {family} has a bucket sample "
                    "without an 'le' label"
                )


def _read_source(source: str) -> str:
    if source == "-":
        return sys.stdin.read()
    if source.startswith(("http://", "https://")):
        import urllib.request

        with urllib.request.urlopen(source, timeout=30) as response:
            return response.read().decode("utf8")
    with open(source, encoding="utf8") as handle:
        return handle.read()


def main(argv: List[str]) -> int:
    """``python -m repro.obs.promcheck SOURCE`` — validate a scrape."""
    if len(argv) != 1:
        print(
            "usage: python -m repro.obs.promcheck "
            "(FILE | URL | -)",
            file=sys.stderr,
        )
        return 2
    try:
        text = _read_source(argv[0])
        families = parse_exposition(text)
    except ExpositionError as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot read {argv[0]!r}: {exc}", file=sys.stderr)
        return 1
    samples = sum(len(info["samples"]) for info in families.values())
    print(
        f"ok: {len(families)} metric families, {samples} samples"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main(sys.argv[1:]))
