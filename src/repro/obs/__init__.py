"""Production observability for the diff service (stdlib only).

Three small, dependency-free pillars, threaded through the serving
stack by :mod:`repro.service`, :mod:`repro.corpus.service` and the CLI:

* :mod:`repro.obs.metrics` — a thread-safe, lock-free-to-read metrics
  registry (counters, gauges, fixed-bucket histograms) rendered as
  Prometheus text exposition or JSON by ``GET /metrics``;
* :mod:`repro.obs.logging` — structured JSON/text logging with a
  per-request correlation ID carried in a :mod:`contextvars` variable
  and propagated over HTTP as ``X-Request-Id``;
* :mod:`repro.obs.runmeta` — CWLProv-style operational metadata (who,
  where, when, which tool version) captured for every ingested run and
  persisted as a sidecar next to the run document.

:mod:`repro.obs.promcheck` validates Prometheus exposition syntax — the
CI job runs it against a live ``/metrics`` scrape, and the golden tests
use it to keep the renderer honest.
"""

from repro.obs.logging import (
    LOG_FORMATS,
    bound_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.promcheck import parse_exposition
from repro.obs.runmeta import RunMetadata, capture_run_metadata

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "LOG_FORMATS",
    "MetricsRegistry",
    "RunMetadata",
    "bound_request_id",
    "capture_run_metadata",
    "configure_logging",
    "current_request_id",
    "get_logger",
    "new_request_id",
    "parse_exposition",
]
