"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class.  The sub-classes mirror the stages of the paper's
pipeline: graph construction, series-parallel recognition, specification
validation, run validation, and differencing.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphStructureError(ReproError):
    """A graph violates a structural requirement (e.g. not a flow network)."""


class NotSeriesParallelError(GraphStructureError):
    """A graph is a flow network but not a series-parallel graph.

    Carries the residual graph left after exhaustive series/parallel
    reductions, which embeds the forbidden minor (the four-node "N" graph of
    Theorem 1 / [Jakoby et al. 2006]).
    """

    def __init__(self, message: str, residual_edges=None):
        super().__init__(message)
        #: Edges of the irreducible residual graph (diagnostic aid).
        self.residual_edges = list(residual_edges or [])


class SpecificationError(ReproError):
    """A workflow specification is malformed.

    Raised for duplicate labels, fork sets that are not series subgraphs,
    loop sets that are not complete subgraphs, or fork/loop families that are
    not laminar (Definition 3.6).
    """


class InvalidRunError(ReproError):
    """A graph is not a valid run of the given specification.

    Covers both the general homomorphism conditions of Section III-B and the
    stricter SP-model conditions enforced by the tree execution function
    ``f''`` (Algorithms 2 and 5).
    """


class CostModelError(ReproError):
    """A cost model violates the metric axioms of Section III-C.2."""


class EditScriptError(ReproError):
    """An edit operation cannot be applied, or a script is inconsistent.

    Raised when an operation references nodes that do not exist, when the
    edited path is not elementary at application time, or when an
    intermediate graph fails run validation.
    """


class MatchingError(ReproError):
    """An assignment-problem instance is infeasible or malformed."""


class InterchangeError(ReproError):
    """A foreign provenance document cannot be parsed or normalised.

    Raised by the PROV-JSON/OPM interchange layer for invalid JSON,
    structurally malformed documents (non-object sections, relations
    missing their endpoints), cyclic dependency graphs, and embedded
    specifications that fail re-validation.
    """


class NotFoundError(ReproError):
    """A named specification or run does not exist in the store.

    The store and corpus layers raise this (rather than the bare
    :class:`ReproError`) so the HTTP service layer can map "unknown
    name" failures to a 404 response instead of a generic client
    error — and so programmatic callers can distinguish a typo from a
    structural problem.
    """


class ConflictError(ReproError):
    """A write collides with existing state of different content.

    Raised when a specification is imported or added under a name that
    already denotes a *different* specification — overwriting would
    orphan every run stored under the old content.  The HTTP service
    layer maps this to a 409 response.
    """


class PayloadTooLargeError(ReproError):
    """A request body exceeds the server's configured size ceiling.

    Raised by the HTTP server before reading an oversized body into
    memory (``Content-Length`` above ``max_body_bytes``, or a chunked
    stream crossing it mid-read).  The service layer maps this to a
    413 response.
    """


class ServiceUnavailableError(ReproError):
    """The server is shutting down and cannot complete the request.

    Raised when a draining server aborts requests that were waiting on
    a coalesced in-flight computation (single-flight followers) whose
    leader will not finish before the drain deadline.  The HTTP
    service layer maps this to a 503 response; the work was never
    applied, so clients may safely retry against a healthy server.
    """


class TransportError(ReproError):
    """The HTTP client could not reach the server at all.

    Distinct from every server-reported failure: no response arrived,
    so the request may or may not have been applied.  Streaming clients
    treat this (and only this) as retryable — they re-handshake with
    ``run_open`` and resume from the last acknowledged sequence number,
    relying on idempotent replay for exactly-once ingestion.
    """


class StreamProtocolError(ReproError):
    """A streaming-ingestion frame violates the event protocol.

    Raised for malformed NDJSON frames, unknown event kinds, sequence
    numbers that skip ahead of the session's contiguous prefix, events
    addressed to unknown or already-closed sessions, and ``run_open``
    replays whose payload differs from the original.  The HTTP service
    layer maps this to a 400 response; clients resume by re-sending
    from the last acknowledged sequence number.
    """
