"""repro.io subpackage."""
