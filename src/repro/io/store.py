"""File-backed catalog of specifications and runs (PDiffView's store).

The prototype "allows users to view, store, generate and import/export
SP-specifications and their associated runs"; this module provides the
storage half: a directory layout

.. code-block:: text

    <root>/specs/<spec-name>.xml
    <root>/runs/<spec-name>/<run-name>.xml
    <root>/index/<index-name>.json

with atomic writes (temp file + rename) so a crashed process never leaves
a half-written catalog entry — the usual durability idiom for file-backed
stores.  The ``index/`` area holds derived data maintained by the corpus
subsystem (run fingerprints, distance caches); deleting it loses only
recomputable state, never a specification or run.

Names containing characters outside ``[A-Za-z0-9._-]`` are sanitised for
the filesystem and suffixed with a short content hash so distinct names
can never collide on disk (``"a/b"`` and ``"a_b"`` map to different
files); a per-entry ``<stem>.name`` sidecar records each mangled stem's
original name so listings stay faithful.  One sidecar file per entry —
rather than a shared map — keeps every write atomic and free of
read-modify-write races between concurrent savers.
"""

from __future__ import annotations

import hashlib
import os
import json
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional

from repro.errors import ConflictError, NotFoundError, ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.runmeta import RunMetadata
from repro.io.xml_io import (
    run_from_xml,
    run_to_xml,
    specification_from_xml,
    specification_to_xml,
)
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def atomic_write(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + fsync + rename).

    Readers never observe a partial file: they see either the previous
    content or the full new content.  Shared by the store and by the
    corpus subsystem's derived-data files (distance cache, sidecars).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=path.suffix
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _safe_name(name: str) -> str:
    """A filesystem-safe, collision-free file stem for ``name``.

    Names already made of ``[A-Za-z0-9._-]`` map to themselves.  Any
    other name has its unsafe characters replaced by ``_`` and a short
    hash of the *original* name appended, so two distinct names can
    never sanitise to the same stem (``"a/b"`` vs ``"a_b"``).
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    )
    if not cleaned:
        raise ReproError("cannot derive a file name from an empty name")
    if cleaned != name:
        digest = hashlib.sha256(name.encode("utf8")).hexdigest()[:8]
        cleaned = f"{cleaned}~{digest}"
    return cleaned


def _record_name(directory: Path, stem: str, original: str) -> None:
    """Remember ``stem -> original`` when sanitisation mangled a name.

    Written as an individual ``<stem>.name`` sidecar file: the write is
    atomic on its own, so concurrent savers of different entries can
    never lose each other's mappings.
    """
    if stem == original:
        return
    atomic_write(directory / f"{stem}.name", original)


def _original_name(directory: Path, stem: str) -> str:
    sidecar = directory / f"{stem}.name"
    if sidecar.exists():
        try:
            return sidecar.read_text(encoding="utf8")
        except OSError:
            pass
    return stem


def _list_names(directory: Path) -> List[str]:
    return sorted(
        _original_name(directory, path.stem)
        for path in directory.glob("*.xml")
    )


class WorkflowStore:
    """A directory-backed catalog of specifications and their runs."""

    def __init__(self, root):
        # Only real path types.  Anything else (most notably another
        # WorkflowStore, or a Workspace) would be str()-ed by Path into
        # a repr-named directory that silently shadows the real store —
        # exactly the class of bug that once committed a
        # ``<...WorkflowStore object at 0x...>`` directory.
        if not isinstance(root, (str, os.PathLike)):
            raise ReproError(
                "WorkflowStore root must be a path (str or "
                f"os.PathLike), not {type(root).__name__}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "specs").mkdir(exist_ok=True)
        (self.root / "runs").mkdir(exist_ok=True)

    @staticmethod
    def _locate(directory: Path, name: str) -> Optional[Path]:
        """The file holding ``name``, or ``None``.

        Primary lookup is by sanitised stem.  As a recovery path, a
        ``name`` that is itself the literal stem of an existing file is
        accepted — so entries whose ``<stem>.name`` sidecar was lost
        (listed under their raw stem) remain loadable, as do files
        written under older, unsuffixed manglings *by the stem the
        listing reports* (their original names are unrecoverable
        without a sidecar).  Literal stems containing ``~`` only ever
        arise from mangling, never from sanitising a user name, so the
        fallback cannot shadow a distinct entry.
        """
        primary = directory / f"{_safe_name(name)}.xml"
        if primary.exists():
            return primary
        literal = directory / f"{name}.xml"
        if literal.name == f"{name}.xml" and literal.exists():
            return literal
        return None

    # -- specifications -------------------------------------------------
    def save_specification(self, spec: WorkflowSpecification) -> Path:
        """Persist a specification; returns the file path."""
        directory = self.root / "specs"
        stem = _safe_name(spec.name)
        path = directory / f"{stem}.xml"
        # Sidecar first: an orphaned name entry is harmless (listings
        # iterate *.xml), whereas an unmapped mangled file would list
        # under its raw stem.
        _record_name(directory, stem, spec.name)
        atomic_write(path, specification_to_xml(spec))
        return path

    def has_specification(self, name: str) -> bool:
        """True when a specification named ``name`` is stored."""
        return self._locate(self.root / "specs", name) is not None

    def load_specification(self, name: str) -> WorkflowSpecification:
        path = self._locate(self.root / "specs", name)
        if path is None:
            raise NotFoundError(
                f"no stored specification named {name!r}"
            )
        return specification_from_xml(path.read_text(encoding="utf8"))

    def list_specifications(self) -> List[str]:
        return _list_names(self.root / "specs")

    # -- runs --------------------------------------------------------------
    def run_path(self, spec_name: str, run_name: str) -> Path:
        """The file path a run of ``spec_name`` named ``run_name`` uses."""
        return (
            self.root
            / "runs"
            / _safe_name(spec_name)
            / f"{_safe_name(run_name)}.xml"
        )

    def locate_run(self, spec_name: str, run_name: str) -> Optional[Path]:
        """The existing file for a run (with the literal-stem fallback
        of :meth:`_locate`), or ``None``.  Index consumers stat this
        path so their freshness stamps track the file actually read."""
        return self._locate(
            self.root / "runs" / _safe_name(spec_name), run_name
        )

    def save_run(
        self,
        run: WorkflowRun,
        meta: Optional["RunMetadata"] = None,
    ) -> Path:
        """Persist a run under its specification's directory.

        ``meta`` is the operational account of the ingest
        (:class:`~repro.obs.runmeta.RunMetadata`); when omitted the
        current context is captured automatically.  It lands in a
        ``<stem>.meta.json`` sidecar next to the run document —
        listings glob ``*.xml``, so sidecars never pollute run names.
        """
        from repro.obs.runmeta import capture_run_metadata

        path = self.run_path(run.spec.name, run.name)
        _record_name(path.parent, path.stem, run.name)  # sidecar first
        if meta is None:
            meta = capture_run_metadata()
        atomic_write(
            path.parent / f"{path.stem}.meta.json",
            json.dumps(meta.to_dict(), sort_keys=True),
        )
        atomic_write(path, run_to_xml(run))
        return path

    def run_metadata(
        self, spec_name: str, run_name: str
    ) -> Optional["RunMetadata"]:
        """The operational metadata of a stored run, or ``None``.

        Metadata is best-effort: a run without a sidecar (written by an
        older version) or with a corrupt one is simply a run with no
        metadata.
        """
        from repro.obs.runmeta import RunMetadata

        path = self.locate_run(spec_name, run_name)
        if path is None:
            return None
        sidecar = path.parent / f"{path.stem}.meta.json"
        if not sidecar.exists():
            return None
        try:
            payload = json.loads(sidecar.read_text(encoding="utf8"))
        except (OSError, ValueError):
            return None
        return RunMetadata.from_dict(payload)

    def load_run(
        self, spec: WorkflowSpecification, name: str
    ) -> WorkflowRun:
        path = self.locate_run(spec.name, name)
        if path is None:
            raise NotFoundError(
                f"no stored run {name!r} for specification {spec.name!r}"
            )
        return run_from_xml(path.read_text(encoding="utf8"), spec)

    def list_runs(self, spec_name: str) -> List[str]:
        directory = self.root / "runs" / _safe_name(spec_name)
        if not directory.exists():
            return []
        return _list_names(directory)

    # -- external provenance (interchange subsystem) --------------------
    def ingest_prov(
        self,
        source,
        run_name: str = "",
        spec_name: Optional[str] = None,
    ):
        """Import a PROV-JSON/OPM document and persist spec and run.

        ``source`` is a mapping, JSON text, or file path (see
        :func:`repro.interchange.convert.import_document`).  Documents
        exported by this library reconstruct exactly through their
        embedded plan; foreign documents are SP-ized and land with a
        :class:`~repro.interchange.normalize.NormalizationReport`.
        Returns the :class:`~repro.interchange.convert.ImportResult`.
        """
        from repro.corpus.fingerprint import spec_fingerprint
        from repro.interchange.convert import import_document
        from repro.obs.runmeta import _utc_now, capture_run_metadata

        started = _utc_now()
        result = import_document(
            source, run_name=run_name, spec_name=spec_name
        )
        if self.has_specification(result.spec.name):
            # Never silently overwrite a same-name specification with
            # different content: that would orphan every run already
            # stored under it.  (The corpus service applies the same
            # guard in ``add_run``.)
            stored = self.load_specification(result.spec.name)
            if spec_fingerprint(stored) != spec_fingerprint(result.spec):
                raise ConflictError(
                    f"a different specification named "
                    f"{result.spec.name!r} already exists in this "
                    "store; import with another spec_name or remove "
                    "the old specification first"
                )
        self.save_specification(result.spec)
        self.save_run(
            result.run,
            meta=capture_run_metadata(
                origin="prov-import", started=started
            ),
        )
        return result

    # -- derived indexes (corpus/query subsystems) ----------------------
    @property
    def index_dir(self) -> Path:
        """Directory for derived, recomputable data (``<root>/index/``)."""
        path = self.root / "index"
        path.mkdir(parents=True, exist_ok=True)
        return path

    def index_path(
        self, name: str, namespace: Optional[str] = None
    ) -> Path:
        """The file an index named ``name`` uses (without creating it).

        ``namespace`` selects a subdirectory of ``index/`` — each
        subsystem keeps its derived files in its own namespace (the
        corpus distance cache lives at the top level for backwards
        compatibility; the query engine's files live under
        ``index/query/``).  Deleting a namespace directory loses only
        that subsystem's recomputable state.
        """
        directory = self.root / "index"
        if namespace is not None:
            directory = directory / _safe_name(namespace)
        return directory / f"{_safe_name(name)}.json"

    def load_index(
        self, name: str, namespace: Optional[str] = None
    ) -> Optional[dict]:
        """Read a JSON index by name; ``None`` when absent or corrupt.

        A corrupt index is treated as missing — everything under
        ``index/`` is derived data that callers rebuild on demand.
        Reading never creates ``index/``, so ephemeral (read-only)
        consumers leave the store untouched.
        """
        path = self.index_path(name, namespace)
        if not path.exists():
            return None
        try:
            loaded = json.loads(path.read_text(encoding="utf8"))
        except (OSError, ValueError):
            return None
        return loaded if isinstance(loaded, dict) else None

    def save_index(
        self, name: str, payload: dict, namespace: Optional[str] = None
    ) -> Path:
        """Atomically persist a JSON index by name (and namespace)."""
        path = self.index_path(name, namespace)
        atomic_write(path, json.dumps(payload, sort_keys=True))
        return path

    def list_indexes(self, namespace: Optional[str] = None) -> List[str]:
        """Names of the stored indexes in one namespace (sorted)."""
        directory = self.root / "index"
        if namespace is not None:
            directory = directory / _safe_name(namespace)
        if not directory.exists():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))
