"""File-backed catalog of specifications and runs (PDiffView's store).

The prototype "allows users to view, store, generate and import/export
SP-specifications and their associated runs"; this module provides the
storage half: a directory layout

.. code-block:: text

    <root>/specs/<spec-name>.xml
    <root>/runs/<spec-name>/<run-name>.xml

with atomic writes (temp file + rename) so a crashed process never leaves
a half-written catalog entry — the usual durability idiom for file-backed
stores.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.io.xml_io import (
    run_from_xml,
    run_to_xml,
    specification_from_xml,
    specification_to_xml,
)
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=path.suffix
    )
    try:
        with os.fdopen(descriptor, "w", encoding="utf8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def _safe_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch in "-_." else "_" for ch in name
    )
    if not cleaned:
        raise ReproError("cannot derive a file name from an empty name")
    return cleaned


class WorkflowStore:
    """A directory-backed catalog of specifications and their runs."""

    def __init__(self, root):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "specs").mkdir(exist_ok=True)
        (self.root / "runs").mkdir(exist_ok=True)

    # -- specifications -------------------------------------------------
    def save_specification(self, spec: WorkflowSpecification) -> Path:
        """Persist a specification; returns the file path."""
        path = self.root / "specs" / f"{_safe_name(spec.name)}.xml"
        _atomic_write(path, specification_to_xml(spec))
        return path

    def load_specification(self, name: str) -> WorkflowSpecification:
        path = self.root / "specs" / f"{_safe_name(name)}.xml"
        if not path.exists():
            raise ReproError(f"no stored specification named {name!r}")
        return specification_from_xml(path.read_text(encoding="utf8"))

    def list_specifications(self) -> List[str]:
        return sorted(
            path.stem for path in (self.root / "specs").glob("*.xml")
        )

    # -- runs --------------------------------------------------------------
    def save_run(self, run: WorkflowRun) -> Path:
        """Persist a run under its specification's directory."""
        directory = self.root / "runs" / _safe_name(run.spec.name)
        path = directory / f"{_safe_name(run.name)}.xml"
        _atomic_write(path, run_to_xml(run))
        return path

    def load_run(
        self, spec: WorkflowSpecification, name: str
    ) -> WorkflowRun:
        path = (
            self.root
            / "runs"
            / _safe_name(spec.name)
            / f"{_safe_name(name)}.xml"
        )
        if not path.exists():
            raise ReproError(
                f"no stored run {name!r} for specification {spec.name!r}"
            )
        return run_from_xml(path.read_text(encoding="utf8"), spec)

    def list_runs(self, spec_name: str) -> List[str]:
        directory = self.root / "runs" / _safe_name(spec_name)
        if not directory.exists():
            return []
        return sorted(path.stem for path in directory.glob("*.xml"))
