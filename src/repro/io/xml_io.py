"""XML import/export of specifications and runs (Section VIII).

The paper's prototype stores specifications and runs as XML files (and
its benchmarks omit XML parse time — ours do the same).  The schema is
minimal and self-describing:

.. code-block:: xml

    <specification name="PA">
      <nodes><node id="getProteinSeq" label="getProteinSeq"/>…</nodes>
      <edges><edge source="…" target="…" key="0"/>…</edges>
      <forks><fork name="F1"><edge …/>…</fork>…</forks>
      <loops><loop name="L1"><edge …/>…</loop>…</loops>
    </specification>

    <run name="r1" spec="PA">
      <nodes><node id="FastaFormat-a" label="FastaFormat"/>…</nodes>
      <edges><edge source="…" target="…" key="0"/>…</edges>
    </run>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Optional, Tuple

from repro.errors import ReproError
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def _graph_to_element(graph: FlowNetwork, tag: str, name: str) -> ET.Element:
    root = ET.Element(tag, {"name": name})
    nodes = ET.SubElement(root, "nodes")
    for node in graph.nodes():
        ET.SubElement(
            nodes, "node", {"id": str(node), "label": graph.label(node)}
        )
    edges = ET.SubElement(root, "edges")
    for u, v, key in graph.edges():
        ET.SubElement(
            edges,
            "edge",
            {"source": str(u), "target": str(v), "key": str(key)},
        )
    return root


def _edge_id(edge: ET.Element) -> Tuple:
    """The ``(source, target, key)`` triple of one ``<edge>`` element.

    Validates the key attribute so corrupted files surface as
    :class:`ReproError`, never as a bare :class:`ValueError`.
    """
    raw_key = edge.get("key", "0")
    try:
        key = int(raw_key)
    except ValueError:
        raise ReproError(
            f"edge key {raw_key!r} is not an integer"
        ) from None
    return (edge.get("source"), edge.get("target"), key)


def _graph_from_element(element: ET.Element) -> FlowNetwork:
    graph = FlowNetwork(name=element.get("name", ""))
    nodes = element.find("nodes")
    if nodes is None:
        raise ReproError("missing <nodes> section")
    for node in nodes.findall("node"):
        graph.add_node(node.get("id"), node.get("label"))
    edges = element.find("edges")
    if edges is None:
        raise ReproError("missing <edges> section")
    for edge in edges.findall("edge"):
        graph.add_edge(*_edge_id(edge))
    return graph


def _element_set(parent: ET.Element, tag: str, item_tag: str, elements):
    section = ET.SubElement(parent, tag)
    for index, annotation in enumerate(elements, start=1):
        item = ET.SubElement(
            section, item_tag, {"name": annotation.name or f"{item_tag}{index}"}
        )
        for u, v, key in sorted(annotation.edges, key=str):
            ET.SubElement(
                item,
                "edge",
                {"source": str(u), "target": str(v), "key": str(key)},
            )


def specification_to_xml(spec: WorkflowSpecification) -> str:
    """Serialise a specification (graph + fork/loop elements) to XML."""
    root = _graph_to_element(spec.graph, "specification", spec.name)
    _element_set(root, "forks", "fork", spec.fork_elements)
    _element_set(root, "loops", "loop", spec.loop_elements)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _parse_xml(text: str, what: str) -> ET.Element:
    """Parse XML, turning syntax errors into :class:`ReproError`.

    Stored catalog files can be corrupted out-of-band (truncated copies,
    editor accidents); a raw :class:`xml.etree.ElementTree.ParseError`
    would escape the library's exception hierarchy and surface as a
    traceback in the CLI.
    """
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise ReproError(f"malformed {what} XML: {exc}") from None


def specification_from_xml(text: str) -> WorkflowSpecification:
    """Parse a specification from XML (re-validating everything)."""
    root = _parse_xml(text, "specification")
    if root.tag != "specification":
        raise ReproError(f"expected <specification>, got <{root.tag}>")
    graph = _graph_from_element(root)

    def read_elements(tag: str, item_tag: str) -> List[List[Tuple]]:
        section = root.find(tag)
        result = []
        if section is None:
            return result
        for item in section.findall(item_tag):
            result.append(
                [_edge_id(edge) for edge in item.findall("edge")]
            )
        return result

    return WorkflowSpecification(
        graph,
        forks=read_elements("forks", "fork"),
        loops=read_elements("loops", "loop"),
        name=root.get("name", ""),
    )


def run_to_xml(run: WorkflowRun) -> str:
    """Serialise a run graph to XML."""
    root = _graph_to_element(run.graph, "run", run.name)
    root.set("spec", run.spec.name)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def run_from_xml(
    text: str, spec: WorkflowSpecification
) -> WorkflowRun:
    """Parse and re-validate a run against ``spec``."""
    root = _parse_xml(text, "run")
    if root.tag != "run":
        raise ReproError(f"expected <run>, got <{root.tag}>")
    declared = root.get("spec")
    if declared and declared != spec.name:
        raise ReproError(
            f"run was stored for specification {declared!r}, "
            f"got {spec.name!r}"
        )
    graph = _graph_from_element(root)
    return WorkflowRun(spec, graph, name=root.get("name", ""))
