"""JSON import/export — a modern alternative to the XML format.

Same content model as :mod:`repro.io.xml_io`; useful for interop with
notebook tooling and for compact storage of large synthetic workloads.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import ReproError
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def _graph_to_dict(graph: FlowNetwork) -> Dict[str, Any]:
    return {
        "nodes": [
            {"id": str(node), "label": graph.label(node)}
            for node in graph.nodes()
        ],
        "edges": [
            {"source": str(u), "target": str(v), "key": key}
            for u, v, key in graph.edges()
        ],
    }


def _graph_from_dict(payload: Dict[str, Any], name: str = "") -> FlowNetwork:
    graph = FlowNetwork(name=name)
    for node in payload["nodes"]:
        graph.add_node(node["id"], node.get("label"))
    for edge in payload["edges"]:
        graph.add_edge(edge["source"], edge["target"], int(edge.get("key", 0)))
    return graph


def specification_to_json(spec: WorkflowSpecification) -> str:
    """Serialise a specification to a JSON string."""
    payload = {
        "kind": "specification",
        "name": spec.name,
        "graph": _graph_to_dict(spec.graph),
        "forks": [
            sorted([list(edge) for edge in a.edges])
            for a in spec.fork_elements
        ],
        "loops": [
            sorted([list(edge) for edge in a.edges])
            for a in spec.loop_elements
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def specification_from_json(text: str) -> WorkflowSpecification:
    """Parse a specification from JSON (re-validating everything)."""
    payload = json.loads(text)
    if payload.get("kind") != "specification":
        raise ReproError("JSON payload is not a specification")
    graph = _graph_from_dict(payload["graph"], payload.get("name", ""))
    to_tuples = lambda elems: [
        [(e[0], e[1], int(e[2])) for e in elem] for elem in elems
    ]
    return WorkflowSpecification(
        graph,
        forks=to_tuples(payload.get("forks", [])),
        loops=to_tuples(payload.get("loops", [])),
        name=payload.get("name", ""),
    )


def run_to_json(run: WorkflowRun) -> str:
    """Serialise a run graph to a JSON string."""
    payload = {
        "kind": "run",
        "name": run.name,
        "spec": run.spec.name,
        "graph": _graph_to_dict(run.graph),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def run_from_json(text: str, spec: WorkflowSpecification) -> WorkflowRun:
    """Parse and re-validate a run against ``spec``."""
    payload = json.loads(text)
    if payload.get("kind") != "run":
        raise ReproError("JSON payload is not a run")
    declared = payload.get("spec")
    if declared and declared != spec.name:
        raise ReproError(
            f"run was stored for specification {declared!r}, "
            f"got {spec.name!r}"
        )
    graph = _graph_from_dict(payload["graph"])
    return WorkflowRun(spec, graph, name=payload.get("name", ""))
