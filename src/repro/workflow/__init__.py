"""repro.workflow subpackage."""
