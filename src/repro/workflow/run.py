"""Workflow runs: a run graph paired with its annotated SP-tree.

A :class:`WorkflowRun` is the library's working representation of a
provenance graph: the concrete flow network produced by one execution of a
specification, together with the annotated SP-tree ``T_R`` (Algorithms 2
and 5) used by every downstream algorithm.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graphs.flow_network import FlowNetwork
from repro.sptree.annotate_run import annotate_run_tree
from repro.sptree.nodes import SPTree


class WorkflowRun:
    """A validated run of an SP-workflow specification.

    Parameters
    ----------
    spec:
        The :class:`~repro.workflow.specification.WorkflowSpecification`
        this run executes.
    graph:
        The run's flow network.  Node labels must be specification labels;
        implicit loop back-edges are allowed per the specification's loops.
    tree:
        The annotated SP-tree, if already known (e.g. produced by the
        executor).  When omitted it is derived from ``graph`` via
        Algorithms 2 and 5 — which also validates the run.

    Raises
    ------
    InvalidRunError
        When ``graph`` is not a valid run of ``spec``.
    """

    def __init__(
        self,
        spec,
        graph: FlowNetwork,
        tree: Optional[SPTree] = None,
        name: str = "",
    ):
        self.spec = spec
        self.graph = graph
        self.name = name or graph.name or "run"
        if tree is None:
            tree = annotate_run_tree(spec, graph)
        self.tree = tree

    @classmethod
    def from_graph(cls, spec, graph: FlowNetwork, name: str = "") -> "WorkflowRun":
        """Validate ``graph`` against ``spec`` and wrap it as a run."""
        return cls(spec, graph, tree=None, name=name)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of node instances (module invocations plus terminals)."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of run edges, including implicit loop back-edges."""
        return self.graph.num_edges

    def equivalent(self, other: "WorkflowRun") -> bool:
        """``≡`` on runs: equal up to instance renaming and P/F reordering."""
        return self.tree.structure_key() == other.tree.structure_key()

    def statistics(self) -> Dict[str, int]:
        """Summary statistics (PDiffView's run panel)."""
        from repro.sptree.nodes import NodeType

        counts = {kind: 0 for kind in NodeType}
        fork_copies = 0
        loop_iterations = 0
        for node in self.tree.iter_nodes("pre"):
            counts[node.kind] += 1
            if node.kind is NodeType.F:
                fork_copies += node.degree
            elif node.kind is NodeType.L:
                loop_iterations += node.degree
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "tree_nodes": self.tree.num_nodes,
            "q_nodes": counts[NodeType.Q],
            "s_nodes": counts[NodeType.S],
            "p_nodes": counts[NodeType.P],
            "f_nodes": counts[NodeType.F],
            "l_nodes": counts[NodeType.L],
            "fork_copies": fork_copies,
            "loop_iterations": loop_iterations,
        }

    def __repr__(self) -> str:
        return (
            f"WorkflowRun({self.name!r}, spec={self.spec.name!r}, "
            f"nodes={self.num_nodes}, edges={self.num_edges})"
        )
