"""The execution function ``f``: generating valid runs (§III-D, §VIII).

This module implements the nondeterministic execution semantics of
SP-workflow specifications as a seeded random generator, using the
parameters of the paper's evaluation (Section VIII):

* ``prob_parallel`` (``prob_p``) — probability that each parallel branch is
  taken; at least one branch is always taken;
* ``max_fork`` / ``prob_fork`` (``maxF`` / ``probF``) — each fork execution
  replicates ``Binomial(maxF, probF)`` copies, floored at one copy;
* ``max_loop`` / ``prob_loop`` (``maxL`` / ``probL``) — likewise for loop
  iterations.

The executor materialises the run graph and the annotated SP-tree
simultaneously, creating fresh node instances (``2a``, ``2b``, …) exactly
as in Fig. 2: series cut points get one instance per traversal, parallel
branches and fork copies share their terminal instances, and consecutive
loop iterations are linked by implicit back-edges between distinct
instances.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.graphs.flow_network import FlowNetwork
from repro.sptree.nodes import EdgeRef, NodeType, SPTree
from repro.workflow.run import WorkflowRun


@dataclass(frozen=True)
class ExecutionParams:
    """Random-run parameters mirroring Section VIII's knobs.

    The defaults execute every parallel branch with probability 0.95 and
    take single fork copies / loop iterations — matching the setup of the
    paper's first two experiments.
    """

    prob_parallel: float = 0.95
    max_fork: int = 1
    prob_fork: float = 0.0
    max_loop: int = 1
    prob_loop: float = 0.0

    def __post_init__(self):
        if not 0.0 <= self.prob_parallel <= 1.0:
            raise ValueError("prob_parallel must be in [0, 1]")
        if not 0.0 <= self.prob_fork <= 1.0:
            raise ValueError("prob_fork must be in [0, 1]")
        if not 0.0 <= self.prob_loop <= 1.0:
            raise ValueError("prob_loop must be in [0, 1]")
        if self.max_fork < 1 or self.max_loop < 1:
            raise ValueError("max_fork and max_loop must be >= 1")


def _suffix(index: int) -> str:
    """Spreadsheet-style suffixes: a, b, …, z, aa, ab, …"""
    letters = []
    index += 1
    while index:
        index, rem = divmod(index - 1, 26)
        letters.append(chr(ord("a") + rem))
    return "".join(reversed(letters))


class _Executor:
    def __init__(self, spec, params: ExecutionParams, rng: random.Random):
        self.spec = spec
        self.params = params
        self.rng = rng
        self.graph = FlowNetwork()
        self._counters: Dict[str, int] = {}
        self._used: set = set()

    # -- instances -----------------------------------------------------
    def fresh(self, label: str):
        index = self._counters.get(label, 0)
        while True:
            node_id = f"{label}{_suffix(index)}"
            index += 1
            if node_id not in self._used:
                break
        self._counters[label] = index
        self._used.add(node_id)
        self.graph.add_node(node_id, label)
        return node_id

    def _binomial_at_least_one(self, trials: int, prob: float) -> int:
        count = sum(1 for _ in range(trials) if self.rng.random() < prob)
        return max(1, count)

    # -- recursive execution -------------------------------------------
    def execute(self, node: SPTree, source, sink) -> SPTree:
        if node.kind is NodeType.Q:
            _, _, key = self.graph.add_edge(source, sink)
            ref = EdgeRef(
                source=source,
                sink=sink,
                source_label=node.source_label,
                sink_label=node.sink_label,
                key=key,
            )
            return SPTree(NodeType.Q, (), edge=ref, origin=node)

        if node.kind is NodeType.S:
            bounds = [source]
            for child in node.children[:-1]:
                bounds.append(self.fresh(child.sink_label))
            bounds.append(sink)
            children = tuple(
                self.execute(child, bounds[i], bounds[i + 1])
                for i, child in enumerate(node.children)
            )
            return SPTree(NodeType.S, children, origin=node)

        if node.kind is NodeType.P:
            chosen = [
                child
                for child in node.children
                if self.rng.random() < self.params.prob_parallel
            ]
            if not chosen:
                chosen = [self.rng.choice(node.children)]
            children = tuple(
                self.execute(child, source, sink) for child in chosen
            )
            return SPTree(NodeType.P, children, origin=node)

        if node.kind is NodeType.F:
            copies = self._binomial_at_least_one(
                self.params.max_fork, self.params.prob_fork
            )
            children = tuple(
                self.execute(node.children[0], source, sink)
                for _ in range(copies)
            )
            return SPTree(NodeType.F, children, origin=node)

        # Loop: iterations composed in series via implicit back-edges.
        iterations = self._binomial_at_least_one(
            self.params.max_loop, self.params.prob_loop
        )
        body = node.children[0]
        children: List[SPTree] = []
        iter_source = source
        for index in range(iterations):
            last = index == iterations - 1
            iter_sink = sink if last else self.fresh(body.sink_label)
            children.append(self.execute(body, iter_source, iter_sink))
            if not last:
                next_source = self.fresh(body.source_label)
                self.graph.add_edge(iter_sink, next_source)
                iter_source = next_source
        return SPTree(NodeType.L, tuple(children), origin=node)

    def run(self, name: str = "") -> WorkflowRun:
        root = self.spec.tree
        source = self.fresh(root.source_label)
        sink = self.fresh(root.sink_label)
        tree = self.execute(root, source, sink)
        self.graph.name = name
        if self.spec.has_ambiguous_branches:
            # Identical parallel branches make the derivation ambiguous;
            # normalise through the canonical annotator so equivalent runs
            # always receive equivalent annotated trees.
            tree = None
        return WorkflowRun(self.spec, self.graph, tree=tree, name=name)


def execute_workflow(
    spec,
    params: Optional[ExecutionParams] = None,
    seed: Optional[Union[int, random.Random]] = None,
    name: str = "",
) -> WorkflowRun:
    """Generate a random valid run of ``spec``.

    Parameters
    ----------
    spec:
        A :class:`~repro.workflow.specification.WorkflowSpecification`.
    params:
        Sampling parameters; defaults to :class:`ExecutionParams`'s
        defaults (``prob_p = 0.95``, single fork copies and loop
        iterations).
    seed:
        An ``int`` seed or a :class:`random.Random` instance for
        reproducibility.
    """
    params = params or ExecutionParams()
    if isinstance(seed, random.Random):
        rng = seed
    else:
        rng = random.Random(seed)
    return _Executor(spec, params, rng).run(name=name)
