"""Synthetic workload generation (Section VIII-B and VIII-C).

Random SP specifications are grown by repeated edge expansion: starting
from a single edge, a random edge is replaced either by a length-2 path
(*series* expansion) or by a pair of parallel edges (*parallel*
expansion).  The ``series_parallel_ratio`` ``r`` is the ratio of series to
parallel expansions used — ``r -> ∞`` yields a single path, ``r -> 0`` a
two-node multigraph, exactly the paper's knob for Figs. 12-13.

Fork and loop annotations are sampled from the canonical SP-tree:

* fork candidates are Q leaves, S nodes and consecutive S-children runs
  (series subgraphs, Lemma 4.1);
* loop candidates are proper consecutive S-children runs, P-node children
  of S nodes, and the root (complete subgraphs, Section VI);

candidates are accepted greedily while they keep the family laminar.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.nodes import NodeType, SPTree
from repro.workflow.execution import ExecutionParams, execute_workflow
from repro.workflow.run import WorkflowRun
from repro.workflow.specification import WorkflowSpecification


def random_sp_graph(
    num_edges: int,
    series_parallel_ratio: float = 1.0,
    seed: Optional[int] = None,
    label_prefix: str = "m",
) -> FlowNetwork:
    """Grow a random SP flow network with exactly ``num_edges`` edges.

    ``series_parallel_ratio`` is the expected ratio of series to parallel
    expansions (``r`` in Section VIII-B).  Use ``float("inf")`` for a pure
    path and ``0.0`` for pure parallel multi-edges.
    """
    if num_edges < 1:
        raise SpecificationError("num_edges must be >= 1")
    if series_parallel_ratio < 0:
        raise SpecificationError("series_parallel_ratio must be >= 0")
    rng = random.Random(seed)
    if series_parallel_ratio == float("inf"):
        series_probability = 1.0
    else:
        series_probability = series_parallel_ratio / (
            1.0 + series_parallel_ratio
        )

    graph = FlowNetwork(name=f"random-sp-{num_edges}")
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"{label_prefix}{counter[0]}"

    source, sink = fresh(), fresh()
    graph.add_node(source)
    graph.add_node(sink)
    edges: List[Tuple[str, str, int]] = [graph.add_edge(source, sink)]

    while len(edges) < num_edges:
        index = rng.randrange(len(edges))
        u, v, key = edges[index]
        if rng.random() < series_probability:
            # Series expansion: u -> w -> v replaces u -> v.
            w = fresh()
            graph.add_node(w)
            graph.remove_edge((u, v, key))
            first = graph.add_edge(u, w)
            second = graph.add_edge(w, v)
            edges[index] = first
            edges.append(second)
        else:
            # Parallel expansion: add a second u -> v edge.
            edges.append(graph.add_edge(u, v))
    return graph


def _leafset(node: SPTree) -> frozenset:
    return frozenset(
        (ref.source, ref.sink, ref.key) for ref in node.leaf_edges()
    )


def _fork_candidates(tree: SPTree, rng: random.Random, attempts: int):
    """Yield random series-subgraph edge sets (with repetition)."""
    nodes = [
        n
        for n in tree.iter_nodes("pre")
        if n.kind in (NodeType.Q, NodeType.S)
    ]
    for _ in range(attempts):
        node = rng.choice(nodes)
        if node.kind is NodeType.Q or rng.random() < 0.5:
            yield _leafset(node)
        else:
            k = node.degree
            i = rng.randrange(k)
            j = rng.randrange(k)
            lo, hi = min(i, j), max(i, j)
            if lo == hi and node.children[lo].kind is NodeType.P:
                # A single P child is a parallel subgraph, not a series
                # one; fall back to the whole S node.
                yield _leafset(node)
                continue
            yield frozenset().union(
                *(_leafset(c) for c in node.children[lo : hi + 1])
            )


def _loop_candidates(tree: SPTree, rng: random.Random, attempts: int):
    """Yield random complete-subgraph edge sets (with repetition)."""
    s_nodes = [n for n in tree.iter_nodes("pre") if n.kind is NodeType.S]
    for _ in range(attempts):
        if not s_nodes or rng.random() < 0.1:
            yield _leafset(tree)  # the whole graph
            continue
        node = rng.choice(s_nodes)
        k = node.degree
        i = rng.randrange(k)
        j = rng.randrange(i, k)
        if i == 0 and j == k - 1:
            j -= 1  # keep the run a *proper* subset
        yield frozenset().union(
            *(_leafset(c) for c in node.children[i : j + 1])
        )


def _laminar_with(chosen: List[frozenset], candidate: frozenset) -> bool:
    for existing in chosen:
        if candidate == existing:
            return False
        if candidate & existing and not (
            candidate < existing or existing < candidate
        ):
            return False
    return True


def annotate_random(
    graph: FlowNetwork,
    num_forks: int = 0,
    num_loops: int = 0,
    seed: Optional[int] = None,
    max_attempts_factor: int = 200,
    name: str = "",
) -> WorkflowSpecification:
    """Sample a laminar fork/loop family over ``graph`` (Fig. 14 setup).

    Raises :class:`SpecificationError` when the requested counts cannot be
    placed (e.g. more loops than distinct complete subgraphs).
    """
    rng = random.Random(seed)
    tree = canonical_sp_tree(graph)
    chosen: List[frozenset] = []
    forks: List[frozenset] = []
    loops: List[frozenset] = []

    attempts = max_attempts_factor * max(1, num_forks)
    for candidate in _fork_candidates(tree, rng, attempts):
        if len(forks) == num_forks:
            break
        if _laminar_with(chosen, candidate):
            chosen.append(candidate)
            forks.append(candidate)
    if len(forks) < num_forks:
        raise SpecificationError(
            f"could only place {len(forks)} of {num_forks} forks"
        )

    attempts = max_attempts_factor * max(1, num_loops)
    for candidate in _loop_candidates(tree, rng, attempts):
        if len(loops) == num_loops:
            break
        if _laminar_with(chosen, candidate):
            chosen.append(candidate)
            loops.append(candidate)
    if len(loops) < num_loops:
        raise SpecificationError(
            f"could only place {len(loops)} of {num_loops} loops"
        )

    return WorkflowSpecification(
        graph,
        forks=[sorted(f) for f in forks],
        loops=[sorted(l) for l in loops],
        name=name or graph.name,
    )


def random_specification(
    num_edges: int,
    series_parallel_ratio: float = 1.0,
    num_forks: int = 0,
    num_loops: int = 0,
    seed: Optional[int] = None,
    name: str = "",
) -> WorkflowSpecification:
    """Random SP specification with fork/loop annotations (one call)."""
    rng = random.Random(seed)
    graph = random_sp_graph(
        num_edges, series_parallel_ratio, seed=rng.randrange(2**31)
    )
    return annotate_random(
        graph,
        num_forks=num_forks,
        num_loops=num_loops,
        seed=rng.randrange(2**31),
        name=name,
    )


def balanced_fork_loop_specification(
    num_edges: int,
    series_parallel_ratio: float = 1.0,
    num_forks: int = 5,
    num_loops: int = 5,
    seed: Optional[int] = None,
    max_graph_attempts: int = 20,
) -> WorkflowSpecification:
    """The Fig. 14/15 workload: forks and loops on *comparable* subgraphs.

    Candidate elements are drawn from one pool — consecutive proper runs
    of S-node children, which are simultaneously series subgraphs (fork-
    eligible) and complete subgraphs (loop-eligible) — and then split
    randomly into forks and loops.  This keeps fork-heavy and loop-heavy
    runs the same size, so the fork/loop comparison isolates the matching
    algorithms rather than workload-size artifacts.
    """
    rng = random.Random(seed)
    needed = num_forks + num_loops
    for _ in range(max_graph_attempts):
        graph = random_sp_graph(
            num_edges, series_parallel_ratio, seed=rng.randrange(2**31)
        )
        tree = canonical_sp_tree(graph)
        s_nodes = [
            n for n in tree.iter_nodes("pre") if n.kind is NodeType.S
        ]
        if not s_nodes:
            continue
        chosen: List[frozenset] = []
        for _ in range(1000 * max(1, needed)):
            if len(chosen) >= needed:
                break
            node = rng.choice(s_nodes)
            k = node.degree
            i = rng.randrange(k)
            j = rng.randrange(i, k)
            if i == 0 and j == k - 1:
                j -= 1  # proper subsets only (complete for loops)
            if j < i:
                continue
            if i == j and node.children[i].kind is not NodeType.Q:
                continue  # a lone P child is not a series subgraph
            candidate = frozenset().union(
                *(_leafset(c) for c in node.children[i : j + 1])
            )
            if _laminar_with(chosen, candidate):
                chosen.append(candidate)
        if len(chosen) >= needed:
            rng.shuffle(chosen)
            return WorkflowSpecification(
                graph,
                forks=[sorted(c) for c in chosen[:num_forks]],
                loops=[sorted(c) for c in chosen[num_forks:needed]],
                name=f"balanced-{num_edges}",
            )
    raise SpecificationError(
        f"could not place {num_forks} forks and {num_loops} loops on a "
        f"{num_edges}-edge graph with ratio {series_parallel_ratio}"
    )


def fig17b_specification(
    num_paths: int = 10, squared: bool = True
) -> WorkflowSpecification:
    """The cost-model workload of Fig. 17(b) (§VIII-D).

    A fork subgraph connects ``u`` and ``v`` by ``num_paths`` parallel
    paths, the ``i``-th of length ``i²`` (or ``i`` when ``squared`` is
    false).  The fork wraps the whole series graph ``s -> u -> … -> v -> t``
    so each fork copy contains a random subset of the parallel paths —
    exactly the workload whose copies the Fig. 16 experiment matches under
    varying ``ε``.
    """
    graph = FlowNetwork(name="fig17b")
    for node in ("s", "u", "v", "t"):
        graph.add_node(node)
    graph.add_edge("s", "u")
    graph.add_edge("v", "t")
    for i in range(1, num_paths + 1):
        length = i * i if squared else i
        previous = "u"
        for step in range(length - 1):
            node = f"p{i}_{step}"
            graph.add_node(node)
            graph.add_edge(previous, node)
            previous = node
        graph.add_edge(previous, "v")
    whole = list(graph.edges())
    return WorkflowSpecification(graph, forks=[whole], name="fig17b")


def random_prov_document(
    num_activities: int,
    edge_probability: float = 0.3,
    seed: Optional[int] = None,
    entity_ratio: float = 0.5,
    opm_dialect: bool = False,
    label_prefix: str = "act",
) -> dict:
    """A random PROV-JSON (or OPM-dialect) document for interchange tests.

    Activities are placed on a random topological order; each forward
    pair gains a dependency with ``edge_probability``.  A dependency is
    expressed either directly (``wasInformedBy`` / ``wasTriggeredBy``)
    or through a mediating entity (``wasGeneratedBy`` + ``used``),
    chosen per edge with ``entity_ratio`` — so both extraction channels
    of the importer are exercised.  Dense documents routinely contain
    the four-node forbidden minor, i.e. they are **not**
    series-parallel, which is exactly what the SP-izing normaliser and
    its forced-serialisation report are tested against.

    Returns a plain ``dict`` (the decoded-JSON form the importer
    accepts), deterministic for a fixed ``seed``.
    """
    if num_activities < 1:
        raise SpecificationError("num_activities must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise SpecificationError("edge_probability must be in [0, 1]")
    rng = random.Random(seed)
    activities = [f"{label_prefix}{i}" for i in range(num_activities)]

    activity_section = "process" if opm_dialect else "activity"
    entity_section = "artifact" if opm_dialect else "entity"
    informed_section = (
        "wasTriggeredBy" if opm_dialect else "wasInformedBy"
    )

    document: dict = {
        "prefix": {"ex": "urn:example:"},
        activity_section: {
            name: {"prov:label": name} for name in activities
        },
        entity_section: {},
        informed_section: {},
        "used": {},
        "wasGeneratedBy": {},
    }

    def informed_record(upstream: str, downstream: str) -> dict:
        if opm_dialect:
            return {"effect": downstream, "cause": upstream}
        return {
            "prov:informed": downstream,
            "prov:informant": upstream,
        }

    def used_record(activity: str, entity: str) -> dict:
        if opm_dialect:
            return {"effect": activity, "cause": entity}
        return {"prov:activity": activity, "prov:entity": entity}

    def generated_record(entity: str, activity: str) -> dict:
        if opm_dialect:
            return {"effect": entity, "cause": activity}
        return {"prov:entity": entity, "prov:activity": activity}

    statement = [0]

    def fresh_id() -> str:
        statement[0] += 1
        return f"_:s{statement[0]}"

    entity_counter = [0]
    for i in range(num_activities):
        for j in range(i + 1, num_activities):
            if rng.random() >= edge_probability:
                continue
            upstream, downstream = activities[i], activities[j]
            if rng.random() < entity_ratio:
                entity_counter[0] += 1
                entity = f"data{entity_counter[0]}"
                document[entity_section][entity] = {
                    "prov:label": entity
                }
                document["wasGeneratedBy"][fresh_id()] = (
                    generated_record(entity, upstream)
                )
                document["used"][fresh_id()] = used_record(
                    downstream, entity
                )
            else:
                document[informed_section][fresh_id()] = (
                    informed_record(upstream, downstream)
                )
    return document


def random_run_pair(
    spec: WorkflowSpecification,
    params: Optional[ExecutionParams] = None,
    seed: Optional[int] = None,
) -> Tuple[WorkflowRun, WorkflowRun]:
    """Two independent random runs of ``spec`` (the evaluation's unit)."""
    rng = random.Random(seed)
    first = execute_workflow(
        spec, params, seed=rng.randrange(2**31), name="run-a"
    )
    second = execute_workflow(
        spec, params, seed=rng.randrange(2**31), name="run-b"
    )
    return first, second
