"""The six real scientific workflows of Table I (Section VIII-A).

The paper evaluates on six workflows collected from myExperiment.org — PA
(the protein-annotation workflow of Fig. 1), EMBOSS, SAXPF, MB, PGAQ and
BAIDD — but publishes only their aggregate characteristics:

======== ===== ===== ===== ====== ===== ======
workflow |V|   |E|   |F|   ||F||  |L|   ||L||
======== ===== ===== ===== ====== ===== ======
PA       11    13    3     6      1     6
EMBOSS   17    22    4     10     2     10
SAXPF    27    36    7     18     1     7
MB       17    19    2     6      1     6
PGAQ     37    41    4     22     2     26
BAIDD    29    36    8     17     2     12
======== ===== ===== ===== ====== ===== ======

We reconstruct specifications matching **all** of these characteristics
exactly (verified by the test suite): backbone chains of single-edge links
and parallel sections, with forks on branches/series runs and loops on
complete runs.  PA additionally mirrors the published topology of Fig. 1
(BLAST fan-out, domain annotation fan-out, reciprocal-best-hit loop) with
domain-appropriate module names.  This substitution is documented in
DESIGN.md §5: the evaluation depends on the workflows only through these
aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork
from repro.workflow.specification import WorkflowSpecification


@dataclass(frozen=True)
class Link:
    """A single-edge backbone segment."""


@dataclass(frozen=True)
class Par:
    """A parallel section with the given branch lengths."""

    branches: Tuple[int, ...]

    def __init__(self, *branches: int):
        object.__setattr__(self, "branches", tuple(branches))
        if len(self.branches) < 2:
            raise SpecificationError("parallel section needs >= 2 branches")
        if any(length < 1 for length in self.branches):
            raise SpecificationError("branch lengths must be >= 1")


Segment = Union[Link, Par]
Selector = Tuple  # ("branch", seg, idx) | ("run", first, last) | ("whole",)


def build_segmented_spec(
    name: str,
    segments: Sequence[Segment],
    forks: Sequence[Selector] = (),
    loops: Sequence[Selector] = (),
    labels: Optional[Sequence[str]] = None,
) -> WorkflowSpecification:
    """Materialise a backbone-of-segments specification.

    ``labels`` (optional) names the nodes in creation order; defaults to
    ``{name}_{index}``.  Fork/loop selectors address segment pieces:

    * ``("branch", seg_index, branch_index)`` — one branch of a parallel
      section (a series subgraph);
    * ``("run", first_seg, last_seg)`` — all edges of consecutive
      segments (series/complete subgraph);
    * ``("whole",)`` — the entire graph.
    """
    graph = FlowNetwork(name=name)
    label_iter = iter(labels) if labels is not None else None
    counter = [0]

    def fresh() -> str:
        if label_iter is not None:
            try:
                label = next(label_iter)
            except StopIteration:
                raise SpecificationError(
                    "label list is shorter than the node count"
                ) from None
        else:
            label = f"{name}_{counter[0]}"
        counter[0] += 1
        graph.add_node(label)
        return label

    segment_edges: List[List[Tuple[str, str, int]]] = []
    branch_edges: List[List[List[Tuple[str, str, int]]]] = []

    current = fresh()
    for segment in segments:
        if isinstance(segment, Link):
            nxt = fresh()
            segment_edges.append([graph.add_edge(current, nxt)])
            branch_edges.append([])
            current = nxt
            continue
        # Create branch interiors first so that label order reads naturally
        # (branch modules before the join module).
        interiors: List[List[str]] = []
        for length in segment.branches:
            interiors.append([fresh() for _ in range(length - 1)])
        end = fresh()
        edges_here: List[Tuple[str, str, int]] = []
        branches_here: List[List[Tuple[str, str, int]]] = []
        for chain in interiors:
            prev = current
            branch: List[Tuple[str, str, int]] = []
            for mid in chain:
                branch.append(graph.add_edge(prev, mid))
                prev = mid
            branch.append(graph.add_edge(prev, end))
            edges_here.extend(branch)
            branches_here.append(branch)
        segment_edges.append(edges_here)
        branch_edges.append(branches_here)
        current = end

    def resolve(selector: Selector) -> List[Tuple[str, str, int]]:
        kind = selector[0]
        if kind == "branch":
            _, seg, idx = selector
            return list(branch_edges[seg][idx])
        if kind == "run":
            _, first, last = selector
            edges: List[Tuple[str, str, int]] = []
            for seg in range(first, last + 1):
                edges.extend(segment_edges[seg])
            return edges
        if kind == "whole":
            return [edge for edges in segment_edges for edge in edges]
        raise SpecificationError(f"unknown selector {selector!r}")

    return WorkflowSpecification(
        graph,
        forks=[resolve(s) for s in forks],
        loops=[resolve(s) for s in loops],
        name=name,
    )


def protein_annotation() -> WorkflowSpecification:
    """PA — the protein-annotation workflow of Fig. 1 (|V|=11, |E|=13).

    Three BLAST branches forked independently, a reciprocal-best-hit loop
    over the BLAST section, and a two-way annotation fan-out.
    """
    return build_segmented_spec(
        "PA",
        segments=[
            Link(),          # getProteinSeq -> FastaFormat
            Par(2, 2, 2),    # BLAST against SwissProt / TrEMBL / PIR
            Link(),          # collectTop1 -> getDomAnnot
            Link(),          # getDomAnnot -> extractDomSeq
            Par(2, 2),       # GO / Brenda annotation pipelines
        ],
        forks=[("branch", 1, 0), ("branch", 1, 1), ("branch", 1, 2)],
        loops=[("run", 1, 1)],
        labels=[
            "getProteinSeq",
            "FastaFormat",
            "BlastSwP",
            "BlastTrEMBL",
            "BlastPIR",
            "collectTop1Compare",
            "getDomAnnot",
            "extractDomSeq",
            "getGOAnnot",
            "getBrendaAnnot",
            "exportAnnotSeq",
        ],
    )


def emboss() -> WorkflowSpecification:
    """EMBOSS — sequence-analysis pipeline (|V|=17, |E|=22)."""
    return build_segmented_spec(
        "EMBOSS",
        segments=[
            Link(),            # 0
            Par(2, 2, 2, 2),   # 1
            Link(),            # 2
            Par(2, 2, 2),      # 3
            Link(),            # 4
            Par(2, 2),         # 5
            Link(),            # 6
        ],
        forks=[
            ("branch", 1, 0),
            ("branch", 3, 0),
            ("run", 4, 5),
            ("run", 6, 6),
        ],
        loops=[("run", 1, 2), ("run", 0, 0)],
    )


def saxpf() -> WorkflowSpecification:
    """SAXPF — the largest fan-out workflow (|V|=27, |E|=36)."""
    return build_segmented_spec(
        "SAXPF",
        segments=[
            Link(),            # 0
            Par(2, 2, 2, 2),   # 1  (A)
            Link(),            # 2
            Par(2, 2, 2),      # 3  (C)
            Link(),            # 4
            Par(2, 2, 2, 2),   # 5  (B)
            Par(3, 3),         # 6  (D)
            Link(),            # 7
            Par(2, 2),         # 8  (E)
        ],
        forks=[
            ("branch", 1, 0),
            ("branch", 1, 1),
            ("branch", 3, 0),
            ("branch", 5, 0),
            ("branch", 5, 1),
            ("branch", 6, 0),
            ("run", 7, 8),
        ],
        loops=[("run", 2, 3)],
    )


def mb() -> WorkflowSpecification:
    """MB — mostly sequential analysis (|V|=17, |E|=19)."""
    return build_segmented_spec(
        "MB",
        segments=[
            Link(),          # 0
            Link(),          # 1
            Par(2, 2, 2),    # 2
            Link(),          # 3
            Link(),          # 4
            Link(),          # 5
            Link(),          # 6
            Par(2, 2),       # 7
            Link(),          # 8
            Link(),          # 9
            Link(),          # 10
        ],
        forks=[("branch", 2, 0), ("run", 3, 6)],
        loops=[("run", 2, 2)],
    )


def pgaq() -> WorkflowSpecification:
    """PGAQ — the longest workflow, loop-heavy (|V|=37, |E|=41)."""
    return build_segmented_spec(
        "PGAQ",
        segments=[
            Link(), Link(), Link(), Link(), Link(),   # 0-4
            Par(2, 2, 2),                             # 5  (A)
            Link(), Link(), Link(), Link(), Link(),   # 6-10
            Par(2, 2),                                # 11 (B)
            Link(), Link(), Link(), Link(),           # 12-15
            Par(2, 2),                                # 16 (C)
            Link(), Link(), Link(), Link(),           # 17-20
            Par(3, 3),                                # 21 (D)
            Link(), Link(), Link(),                   # 22-24
        ],
        forks=[
            ("branch", 5, 0),
            ("branch", 21, 0),
            ("run", 7, 11),
            ("run", 21, 24),
        ],
        loops=[("run", 5, 16), ("run", 22, 24)],
    )


def baidd() -> WorkflowSpecification:
    """BAIDD — fork-heavy drug-discovery workflow (|V|=29, |E|=36)."""
    return build_segmented_spec(
        "BAIDD",
        segments=[
            Link(),          # 0
            Par(2, 2, 2),    # 1  (A)
            Link(),          # 2
            Par(2, 2, 2),    # 3  (B)
            Link(), Link(), Link(),  # 4-6
            Par(2, 2),       # 7  (C)
            Link(),          # 8
            Par(2, 2),       # 9  (D)
            Link(), Link(),  # 10-11
            Par(2, 2, 2),    # 12 (E)
            Link(), Link(),  # 13-14
        ],
        forks=[
            ("branch", 1, 0),
            ("branch", 1, 1),
            ("branch", 3, 0),
            ("branch", 7, 0),
            ("branch", 9, 0),
            ("branch", 12, 0),
            ("branch", 12, 1),
            ("run", 4, 6),
        ],
        loops=[("run", 1, 1), ("run", 3, 3)],
    )


#: Table I expected characteristics (used by tests and the T1 benchmark).
TABLE_I: Dict[str, Dict[str, int]] = {
    "PA": {"|V|": 11, "|E|": 13, "|F|": 3, "||F||": 6, "|L|": 1, "||L||": 6},
    "EMBOSS": {"|V|": 17, "|E|": 22, "|F|": 4, "||F||": 10, "|L|": 2, "||L||": 10},
    "SAXPF": {"|V|": 27, "|E|": 36, "|F|": 7, "||F||": 18, "|L|": 1, "||L||": 7},
    "MB": {"|V|": 17, "|E|": 19, "|F|": 2, "||F||": 6, "|L|": 1, "||L||": 6},
    "PGAQ": {"|V|": 37, "|E|": 41, "|F|": 4, "||F||": 22, "|L|": 2, "||L||": 26},
    "BAIDD": {"|V|": 29, "|E|": 36, "|F|": 8, "||F||": 17, "|L|": 2, "||L||": 12},
}


def all_real_workflows() -> Dict[str, WorkflowSpecification]:
    """All six Table I specifications, keyed by name."""
    return {
        "PA": protein_annotation(),
        "EMBOSS": emboss(),
        "SAXPF": saxpf(),
        "MB": mb(),
        "PGAQ": pgaq(),
        "BAIDD": baidd(),
    }
