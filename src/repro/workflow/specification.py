"""SP-workflow specifications ``(G, F, L)`` (Sections III-D and VI).

A :class:`WorkflowSpecification` bundles

* an acyclic series-parallel flow network ``G`` with unique node labels,
* a family ``F`` of fork elements (series subgraphs), and
* a family ``L`` of loop elements (complete subgraphs),

such that the edge sets of ``F ∪ L`` form a laminar family.  Construction
validates everything and builds the annotated SP-tree via Algorithm 1.

Element syntax
--------------
Fork/loop elements may be given as

* an iterable of **edge ids** ``(u, v, key)``,
* an iterable of **node ids** (the induced subgraph's edges are taken), or
* for loops only, a ``(source, sink)`` **terminal pair** — the complete
  subgraph between two nodes is unique, so this is unambiguous.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SpecificationError
from repro.graphs.flow_network import FlowNetwork, NodeId
from repro.graphs.homomorphism import label_index
from repro.sptree.annotate_spec import (
    Annotation,
    annotate_specification_tree,
)
from repro.sptree.canonical import canonical_sp_tree
from repro.sptree.nodes import NodeType, SPTree
from repro.sptree.validate import validate_spec_tree

EdgeKey = Tuple[NodeId, NodeId, int]
EdgeSet = FrozenSet[EdgeKey]


def induced_edge_set(graph: FlowNetwork, nodes: Iterable[NodeId]) -> EdgeSet:
    """Edge ids of the subgraph induced by ``nodes``."""
    node_set = set(nodes)
    unknown = node_set - set(graph.nodes())
    if unknown:
        raise SpecificationError(f"unknown nodes in element: {sorted(map(repr, unknown))}")
    return frozenset(
        (u, v, key)
        for u, v, key in graph.edges()
        if u in node_set and v in node_set
    )


def complete_subgraph_edges(
    graph: FlowNetwork, source: NodeId, sink: NodeId
) -> EdgeSet:
    """Edges of the complete subgraph between ``source`` and ``sink``.

    The complete subgraph contains *all* paths from ``source`` to ``sink``:
    its edges are exactly those lying on some such path.
    """
    for node in (source, sink):
        if node not in graph:
            raise SpecificationError(f"unknown node {node!r} in loop element")
    reach = graph._reachable_from(source)
    coreach = graph._coreachable_from(sink)
    between = reach & coreach
    edges = frozenset(
        (u, v, key)
        for u, v, key in graph.edges()
        if u in between and v in between
    )
    if not edges:
        raise SpecificationError(
            f"no paths between {source!r} and {sink!r}; cannot form a "
            "complete subgraph"
        )
    return edges


def _normalise_element(
    graph: FlowNetwork, element, kind: NodeType
) -> EdgeSet:
    """Convert one of the accepted element syntaxes to an edge-id set."""
    items = list(element)
    if not items:
        raise SpecificationError("empty fork/loop element")
    if all(isinstance(item, tuple) and len(item) == 3 for item in items):
        known = set(graph.edges())
        missing = [item for item in items if item not in known]
        if missing:
            raise SpecificationError(
                f"element references unknown edges: {missing!r}"
            )
        return frozenset(items)
    if (
        kind is NodeType.L
        and len(items) == 2
        and all(item in graph for item in items)
        and not graph.has_edge(items[0], items[1])
    ):
        # Ambiguity guard: a two-node iterable could mean a terminal pair or
        # a two-node induced subgraph.  When the two nodes are directly
        # connected, the induced reading is taken; otherwise a terminal pair.
        return complete_subgraph_edges(graph, items[0], items[1])
    if all(item in graph for item in items):
        edges = induced_edge_set(graph, items)
        if not edges:
            raise SpecificationError(
                f"element {items!r} induces no edges"
            )
        return edges
    raise SpecificationError(
        f"cannot interpret fork/loop element {items!r}: expected edge ids, "
        "node ids, or a loop terminal pair"
    )


class WorkflowSpecification:
    """A validated SP-workflow specification ``(G, F, L)``.

    Parameters
    ----------
    graph:
        The specification flow network (unique labels, acyclic, SP).
    forks:
        Iterable of fork elements (see module docstring for syntaxes).
    loops:
        Iterable of loop elements.
    name:
        Display name.

    Attributes
    ----------
    tree:
        The annotated SP-tree ``T_G`` built by Algorithm 1.
    fork_elements / loop_elements:
        The normalised :class:`~repro.sptree.annotate_spec.Annotation`
        objects, in input order.
    """

    def __init__(
        self,
        graph: FlowNetwork,
        forks: Sequence = (),
        loops: Sequence = (),
        name: str = "",
    ):
        self.name = name or graph.name or "spec"
        self.graph = graph.copy()
        self.graph.name = self.name
        self.label_to_node = label_index(self.graph)

        canonical = canonical_sp_tree(self.graph)

        self.fork_elements: List[Annotation] = []
        for i, element in enumerate(forks, start=1):
            edges = _normalise_element(self.graph, element, NodeType.F)
            self.fork_elements.append(
                Annotation(NodeType.F, edges, name=f"F{i}")
            )
        self.loop_elements: List[Annotation] = []
        for i, element in enumerate(loops, start=1):
            edges = _normalise_element(self.graph, element, NodeType.L)
            self.loop_elements.append(
                Annotation(NodeType.L, edges, name=f"L{i}")
            )

        self.tree, self.element_nodes = annotate_specification_tree(
            canonical, self.fork_elements + self.loop_elements
        )
        validate_spec_tree(self.tree)

        #: True when the graph has parallel multi-edges between the same
        #: node pair.  Such specifications have *identical* parallel
        #: branches, so a run's derivation is ambiguous; runs must be
        #: normalised through the canonical annotator so that equivalent
        #: runs receive equivalent annotated trees (see
        #: :mod:`repro.sptree.annotate_run`).
        self.has_ambiguous_branches = any(
            count > 1 for count in self.graph.edge_multiset().values()
        )

        #: Loop back-edge label pairs ``(t(H), s(H))`` -> loop annotation.
        self.loop_markers: Dict[Tuple[str, str], Annotation] = {}
        for annotation in self.loop_elements:
            node = self.element_nodes[annotation]
            marker = (node.sink_label, node.source_label)
            if marker in self.loop_markers:
                raise SpecificationError(
                    f"two loops share the back-edge label pair {marker!r}"
                )
            self.loop_markers[marker] = annotation

    # ------------------------------------------------------------------
    # Characteristics (Table I)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V|`` of Table I."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """``|E|`` of Table I."""
        return self.graph.num_edges

    @property
    def num_forks(self) -> int:
        """``|F|`` of Table I."""
        return len(self.fork_elements)

    @property
    def fork_edge_total(self) -> int:
        """``||F||`` of Table I: total edges across fork elements."""
        return sum(len(a.edges) for a in self.fork_elements)

    @property
    def num_loops(self) -> int:
        """``|L|`` of Table I."""
        return len(self.loop_elements)

    @property
    def loop_edge_total(self) -> int:
        """``||L||`` of Table I: total edges across loop elements."""
        return sum(len(a.edges) for a in self.loop_elements)

    def characteristics(self) -> Dict[str, int]:
        """The Table I row for this specification."""
        return {
            "|V|": self.num_nodes,
            "|E|": self.num_edges,
            "|F|": self.num_forks,
            "||F||": self.fork_edge_total,
            "|L|": self.num_loops,
            "||L||": self.loop_edge_total,
        }

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def node_for_label(self, label: str) -> NodeId:
        """Specification node carrying ``label``."""
        try:
            return self.label_to_node[label]
        except KeyError:
            raise SpecificationError(
                f"label {label!r} does not occur in the specification"
            ) from None

    def allowed_back_edges(self) -> set:
        """Label pairs of implicit loop back-edges accepted in runs."""
        return set(self.loop_markers)

    def __repr__(self) -> str:
        stats = self.characteristics()
        return (
            f"WorkflowSpecification({self.name!r}, |V|={stats['|V|']}, "
            f"|E|={stats['|E|']}, |F|={stats['|F|']}, |L|={stats['|L|']})"
        )
